"""Kernel JIT megakernels: codegen, caching, dispatch plumbing — and
the stale-plan regressions that motivated program-scoped PlanTables.

Architectural bit-identity of the JIT tier against the sequential and
wide interpreters is pinned by the three-way differential fuzz in
test_fuzz_differential.py; this file covers everything around it:

- the ``id(inst)`` memoization bugs the :class:`~repro.isa.plans.
  PlanTable` keying fixes (a recycled ``Instruction`` object must never
  see a stale plan; pooled executors must not grow unboundedly),
- megakernel compilation, eligibility, and the kernel-attached cache
  (compile once, hit afterwards, released with the kernel),
- ``Device.run_compiled`` tier selection (``jit=None/True/False``),
  chunking, pooled executors, and timing parity with the other tiers.
"""

import dataclasses
import gc
import weakref

import numpy as np
import pytest

from repro.compiler.cache import KernelCache
from repro.isa.dtypes import D, F
from repro.isa.executor import FunctionalExecutor
from repro.isa.grf import RegOperand
from repro.isa.instructions import (
    Immediate, Instruction, MessageDesc, Opcode,
)
from repro.isa.jit import (
    JitExecutor, JitKernel, JitTracingExecutor, get_jit, jit_eligible,
)
from repro.isa.wide import WideExecutor, WideTracingExecutor
from repro.isa.regions import Region
from repro.sim.device import Device

_VEC = 16


def _packed(n):
    w = min(n, 8)
    return Region(w, w, 1)


def _load_reg(ex, reg, values, dtype):
    ex.grf.write_bytes(reg * 32, np.asarray(values, dtype=dtype.np_dtype))


def _add_imm(imm):
    return Instruction(
        Opcode.ADD, 8, RegOperand(2, 0, D),
        [RegOperand(1, 0, D, _packed(8)), Immediate(imm, D)])


def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


_SAXPY_SIG = [("xbuf", False), ("ybuf", False)]


def _run_saxpy(jit, wide=None, n_threads=32, max_live_threads=1024,
               executor=None, dev=None, collect_timing=True):
    dev = dev if dev is not None else Device()
    rng = np.random.default_rng(11)
    x = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    y = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    xbuf, ybuf = dev.buffer(x.copy()), dev.buffer(y.copy())
    kern = dev.compile(_saxpy_body, "jsaxpy", _SAXPY_SIG, ["tid"])
    run = dev.run_compiled(kern, grid=(n_threads,), surfaces=[xbuf, ybuf],
                           scalars=lambda t: {"tid": t[0]}, name="jsaxpy",
                           wide=wide, jit=jit, executor=executor,
                           max_live_threads=max_live_threads,
                           collect_timing=collect_timing, validate="off")
    got = ybuf.to_numpy().view(np.float32).copy()
    assert np.allclose(got, 2.0 * x + y, atol=1e-6)
    return dev, run, got


def _timing_equal(a, b):
    return all(getattr(a, f.name) == getattr(b, f.name)
               for f in dataclasses.fields(a))


# -- the id(inst) regression --------------------------------------------------


class TestStalePlanRegression:
    def test_recycled_instruction_does_not_reuse_stale_plan(self):
        """An Instruction object recycled (same ``id``) into a *new*
        program with mutated operands must be re-planned.

        The pre-PlanTable executor memoized plans in an ``id(inst)``
        keyed dict that survived across ``run()`` calls, so the mutated
        instruction silently executed with the old program's baked
        immediate fetcher and produced the old result."""
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        inst = _add_imm(10)
        ex.run([inst])
        assert ex.grf.dump_reg(2, D)[:8].tolist() == list(range(10, 18))
        # same object identity, new operands, new program list
        inst.srcs = [RegOperand(1, 0, D, _packed(8)), Immediate(100, D)]
        ex.run([inst])
        assert ex.grf.dump_reg(2, D)[:8].tolist() == list(range(100, 108))

    def test_recycled_destination_not_stale(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        inst = _add_imm(5)
        ex.run([inst])
        inst.dst = RegOperand(3, 0, D)
        ex.run([inst])
        assert ex.grf.dump_reg(3, D)[:8].tolist() == list(range(5, 13))

    def test_plan_table_is_program_scoped(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        prog = [_add_imm(1)]
        ex.run(prog)
        table = ex.plans
        assert table is not None and table.matches(prog)
        ex.run(prog)  # same list object: table retained
        assert ex.plans is table
        other = [_add_imm(2)]
        ex.run(other)  # different program: table replaced, not grown
        assert ex.plans is not table and ex.plans.matches(other)


class TestBoundedPlanState:
    def test_pooled_executor_keeps_one_program_of_plans(self):
        """The old id-keyed dicts grew by one entry per instruction per
        program for the lifetime of a pooled executor; the PlanTable
        binding holds exactly the current program's plans."""
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        last = None
        for imm in range(50):
            last = [_add_imm(imm), _add_imm(imm + 1)]
            ex.run(last)
        assert ex.plans.matches(last)
        assert len(ex.plans.plans) == len(last)

    def test_dead_programs_are_collectable(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        prog = [_add_imm(7)]
        ref = weakref.ref(prog[0])
        ex.run(prog)
        del prog
        ex.run([_add_imm(8)])  # rebinding drops the old table
        gc.collect()
        assert ref() is None


# -- compilation + executors --------------------------------------------------


class TestJitKernel:
    def test_codegen_and_functional_parity(self):
        prog = [_add_imm(10),
                Instruction(Opcode.MUL, 8, RegOperand(3, 0, D),
                            [RegOperand(2, 0, D, _packed(8)),
                             Immediate(3, D)])]
        assert jit_eligible(prog)
        jitk = JitKernel(prog)
        assert "def _mega" in jitk.source and jitk.n_sends == 0

        seq = FunctionalExecutor()
        _load_reg(seq, 1, range(8), D)
        seq.run(prog)

        jx = JitExecutor()
        jx.reset(4)
        for t in range(4):
            jx.grf2d[t, 32:64] = np.arange(8, dtype=np.int32).view(np.uint8)
        jx.bind_jit(jitk)
        jx.run(prog)
        for t in range(4):
            got = jx.grf2d[t, 96:128].view(np.int32)
            assert got.tolist() == seq.grf.dump_reg(3, D)[:8].tolist()

    def test_unbound_program_falls_back_to_wide(self):
        bound = [_add_imm(10)]
        other = [_add_imm(99)]
        jx = JitExecutor()
        jx.reset(2)
        jx.grf2d[:, 32:64] = np.arange(8, dtype=np.int32).view(np.uint8)
        jx.bind_jit(JitKernel(bound))
        jx.run(other)  # not the compiled program: interpreter path
        assert jx.grf2d[0, 64:96].view(np.int32).tolist() == \
            list(range(99, 107))

    def test_ineligible_opcode_rejected(self):
        bad = Instruction(Opcode.SEND,
                          msg=MessageDesc(kind=None, surface=0))
        assert not jit_eligible([bad])


class TestKernelAttachedCache:
    def test_get_jit_compiles_once(self):
        dev = Device()
        kern = dev.compile(_saxpy_body, "jsaxpy", _SAXPY_SIG, ["tid"])
        jitk, cached = get_jit(kern)
        assert jitk is not None and not cached
        again, cached = get_jit(kern)
        assert again is jitk and cached

    def test_released_on_cache_eviction(self):
        dev = Device()
        dev.kernel_cache = KernelCache(maxsize=1)
        kern = dev.compile(_saxpy_body, "jsaxpy", _SAXPY_SIG, ["tid"])
        _run_saxpy(jit=True, dev=dev)
        assert kern._jit is not None and kern._plan_table is not None

        def other_body(cmx, xbuf, ybuf, tid):
            _saxpy_body(cmx, xbuf, ybuf, tid)

        dev.compile(other_body, "jsaxpy2", _SAXPY_SIG, ["tid"])  # evicts
        assert kern._jit is None and kern._plan_table is None


# -- device dispatch ----------------------------------------------------------


class TestDeviceDispatch:
    def test_jit_matches_wide_and_scalar(self):
        _, run_j, out_j = _run_saxpy(jit=True)
        _, run_w, out_w = _run_saxpy(jit=False, wide=True)
        _, run_s, out_s = _run_saxpy(jit=False, wide=False)
        assert np.array_equal(out_j, out_w)
        assert np.array_equal(out_j, out_s)
        assert _timing_equal(run_j.timing, run_w.timing)
        assert _timing_equal(run_j.timing, run_s.timing)

    def test_jit_is_the_default_top_tier(self):
        dev, run_a, _ = _run_saxpy(jit=None)
        assert dev.profile.jit_compiles == 1
        _, run_s, _ = _run_saxpy(jit=False, wide=False)
        assert _timing_equal(run_a.timing, run_s.timing)

    def test_chunked_jit_matches_unchunked(self):
        # 32 threads in chunks of 9: totals must not depend on chunking.
        _, run_c, _ = _run_saxpy(jit=True, max_live_threads=9)
        _, run_u, _ = _run_saxpy(jit=True)
        assert _timing_equal(run_c.timing, run_u.timing)

    def test_functional_only_jit_launch(self):
        dev, run, _ = _run_saxpy(jit=True, collect_timing=False)
        assert run is None and dev.runs == []

    def test_profile_counts_compiles_and_hits(self):
        dev = Device()
        for _ in range(3):
            _run_saxpy(jit=True, dev=dev)
        assert dev.profile.jit_compiles == 1
        assert dev.profile.jit_cache_hits == 2

    def test_pooled_jit_executor_reused_across_launches(self):
        pooled = JitTracingExecutor()
        dev = Device()
        _, run1, _ = _run_saxpy(jit=None, executor=pooled, dev=dev)
        _, run2, _ = _run_saxpy(jit=None, executor=pooled, dev=dev)
        _, run_s, _ = _run_saxpy(jit=False, wide=False)
        assert dev.profile.jit_compiles == 1
        assert dev.profile.jit_cache_hits == 1
        assert _timing_equal(run1.timing, run_s.timing)
        assert _timing_equal(run2.timing, run_s.timing)

    def test_plain_pooled_wide_executor_stays_wide(self):
        # a non-JIT pooled executor silently keeps the wide tier …
        pooled = WideTracingExecutor()
        dev, run, _ = _run_saxpy(jit=None, executor=pooled, dev=Device())
        assert dev.profile.jit_cache_hits + dev.profile.jit_compiles == 1
        _, run_s, _ = _run_saxpy(jit=False, wide=False)
        assert _timing_equal(run.timing, run_s.timing)
        # … unless the JIT was explicitly demanded
        with pytest.raises(ValueError, match="cannot run the JIT tier"):
            _run_saxpy(jit=True, executor=WideTracingExecutor())

    def test_jit_true_requires_wide_path(self):
        with pytest.raises(ValueError, match="requires the wide path"):
            _run_saxpy(jit=True, wide=False)

    def test_jit_true_on_ineligible_program_raises(self):
        dev = Device()
        kern = dev.compile(_saxpy_body, "jsaxpy", _SAXPY_SIG, ["tid"])
        kern.program.insert(0, Instruction(
            Opcode.SEND, msg=MessageDesc(kind=None, surface=0)))
        buf = dev.buffer(np.zeros(_VEC, dtype=np.float32))
        with pytest.raises(ValueError, match="jit=True was requested"):
            dev.run_compiled(kern, grid=(1,), surfaces=[buf, buf],
                             scalars={"tid": 0}, jit=True, validate="off")

    def test_fold_chunk_matches_trace_fanout(self):
        """The vectorized JIT timing fold and the per-thread trace
        fan-out (which the breakdown profiler forces) must agree on
        every KernelTiming field."""
        from repro import obs as obs_mod

        _, run_fold, _ = _run_saxpy(jit=True, n_threads=48,
                                    max_live_threads=16)
        with obs_mod.observed(span_metrics=False):
            _, run_fan, _ = _run_saxpy(jit=True, n_threads=48,
                                       max_live_threads=16)
        assert run_fan.breakdown is not None
        assert _timing_equal(run_fold.timing, run_fan.timing)

    def test_dispatch_jit_spans_emitted(self):
        from repro import obs as obs_mod
        from repro.obs.tracing import ChromeTraceSink

        sink = ChromeTraceSink()
        with obs_mod.observed(sink=sink, span_metrics=False):
            _run_saxpy(jit=True, max_live_threads=20)
        jit_spans = [e for e in sink.events if e["name"] == "dispatch:jit"]
        assert sorted(e["args"]["threads"] for e in jit_spans) == [12, 20]
        outer = [e for e in sink.events if e["name"] == "dispatch"]
        assert outer and outer[0]["args"]["path"] == "jit"
