"""CM vector/matrix types: construction, arithmetic, type promotion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import cm
from repro.cm.vector import CMTypeError


class TestConstruction:
    def test_vector_zero_init(self):
        v = cm.vector(cm.float32, 8)
        assert v.to_numpy().tolist() == [0.0] * 8

    def test_vector_scalar_init(self):
        v = cm.vector(cm.int32, 4, 7)
        assert v.to_numpy().tolist() == [7] * 4

    def test_vector_array_init_converts(self):
        v = cm.vector(cm.uchar, 4, [1.9, 2.5, 300.0, -1.0])
        assert v.to_numpy().tolist() == [1, 2, 44, 255]

    def test_vector_copy_init(self):
        a = cm.vector(cm.int32, 4, [1, 2, 3, 4])
        b = cm.vector(cm.float32, 4, a)
        assert b.to_numpy().tolist() == [1.0, 2.0, 3.0, 4.0]
        a[0] = 9
        assert b.to_numpy()[0] == 1.0  # copy, not a view

    def test_matrix_shape(self):
        m = cm.matrix(cm.short, 3, 5, np.arange(15))
        assert (m.rows, m.cols) == (3, 5)
        assert m[2, 4] == 14

    def test_bad_sizes(self):
        with pytest.raises(CMTypeError):
            cm.vector(cm.int32, 0)
        with pytest.raises(CMTypeError):
            cm.vector(cm.int32, 4, [1, 2, 3])


class TestArithmetic:
    def test_elementwise_ops(self):
        a = cm.vector(cm.float32, 4, [1, 2, 3, 4])
        b = cm.vector(cm.float32, 4, [10, 20, 30, 40])
        assert (a + b).to_numpy().tolist() == [11, 22, 33, 44]
        assert (b - a).to_numpy().tolist() == [9, 18, 27, 36]
        assert (a * b).to_numpy().tolist() == [10, 40, 90, 160]

    def test_scalar_broadcast(self):
        a = cm.vector(cm.int32, 4, [1, 2, 3, 4])
        assert (a + 10).to_numpy().tolist() == [11, 12, 13, 14]
        assert (10 - a).to_numpy().tolist() == [9, 8, 7, 6]
        assert (2 * a).to_numpy().tolist() == [2, 4, 6, 8]

    def test_byte_arith_promotes_to_dword(self):
        a = cm.vector(cm.uchar, 4, [250, 251, 252, 253])
        out = a + 10
        assert out.dtype is cm.int32
        assert out.to_numpy().tolist() == [260, 261, 262, 263]

    def test_uchar_plus_float_is_float(self):
        a = cm.vector(cm.uchar, 4, [1, 2, 3, 4])
        out = a + 0.5
        assert out.dtype is cm.float32

    def test_c_style_integer_division(self):
        a = cm.vector(cm.int32, 4, [7, -7, 9, -9])
        out = a / 2
        assert out.to_numpy().tolist() == [3, -3, 4, -4]

    def test_division_by_zero_is_silent(self):
        a = cm.vector(cm.int32, 2, [1, 2])
        out = a / cm.vector(cm.int32, 2, [0, 1])
        assert out.to_numpy()[1] == 2

    def test_shift_ops(self):
        a = cm.vector(cm.uint, 4, [1, 2, 4, 8])
        assert (a << 2).to_numpy().tolist() == [4, 8, 16, 32]
        assert (a >> 1).to_numpy().tolist() == [0, 1, 2, 4]

    def test_matrix_vector_mixed_shapes(self):
        m = cm.matrix(cm.int32, 2, 4, np.arange(8))
        v = cm.vector(cm.int32, 8, np.ones(8))
        out = m + v
        assert out.to_numpy().tolist() == list(range(1, 9))

    def test_shape_mismatch_rejected(self):
        a = cm.vector(cm.int32, 4)
        b = cm.vector(cm.int32, 8)
        with pytest.raises(CMTypeError):
            _ = a + b

    def test_inplace_ops_write_through(self):
        a = cm.vector(cm.float32, 4, [1, 2, 3, 4])
        a += 1
        a *= 2
        assert a.to_numpy().tolist() == [4, 6, 8, 10]

    def test_comparisons_produce_ushort_masks(self):
        a = cm.vector(cm.int32, 4, [1, 5, 3, 7])
        mask = a > 3
        assert mask.dtype is cm.ushort
        assert mask.to_numpy().tolist() == [0, 1, 0, 1]

    def test_unary(self):
        a = cm.vector(cm.int32, 3, [1, -2, 3])
        assert (-a).to_numpy().tolist() == [-1, 2, -3]
        assert abs(a).to_numpy().tolist() == [1, 2, 3]


class TestAssignment:
    def test_assign_conversion(self):
        v = cm.vector(cm.uchar, 4)
        v.assign([1.7, 2.2, 257.0, -1.0])
        assert v.to_numpy().tolist() == [1, 2, 1, 255]

    def test_assign_saturated(self):
        v = cm.vector(cm.uchar, 4)
        v.assign([300, -5, 20, 255.9], sat=True)
        assert v.to_numpy().tolist() == [255, 0, 20, 255]

    def test_scalar_element_access(self):
        v = cm.vector(cm.float32, 4, [1, 2, 3, 4])
        assert v[2] == 3.0
        v[2] = 9
        assert v.to_numpy()[2] == 9.0

    def test_matrix_element_access(self):
        m = cm.matrix(cm.int32, 2, 3, np.arange(6))
        m[1, 2] = 42
        assert m[1, 2] == 42


class TestMergeAndReductions:
    def test_merge_two_operand(self):
        v = cm.vector(cm.int32, 4, [0, 0, 0, 0])
        v.merge(cm.vector(cm.int32, 4, [1, 2, 3, 4]), [1, 0, 1, 0])
        assert v.to_numpy().tolist() == [1, 0, 3, 0]

    def test_merge_three_operand(self):
        v = cm.vector(cm.int32, 4)
        v.merge(5, 9, [1, 0, 0, 1])
        assert v.to_numpy().tolist() == [5, 9, 9, 5]

    def test_any_all(self):
        v = cm.vector(cm.ushort, 4, [0, 0, 1, 0])
        assert v.any() and not v.all()
        assert not cm.vector(cm.ushort, 4, 0).any()
        assert cm.vector(cm.ushort, 4, 1).all()

    def test_cm_sum_and_reduce(self):
        v = cm.vector(cm.float32, 8, np.arange(8))
        assert cm.cm_sum(v) == 28.0
        assert cm.cm_reduce_min(v) == 0.0
        assert cm.cm_reduce_max(v) == 7.0

    def test_cm_min_max_elementwise(self):
        a = cm.vector(cm.int32, 4, [1, 5, 3, 7])
        assert cm.cm_min(a, 4).to_numpy().tolist() == [1, 4, 3, 4]
        assert cm.cm_max(a, 4).to_numpy().tolist() == [4, 5, 4, 7]

    def test_cm_math(self):
        v = cm.vector(cm.float32, 4, [4.0, 9.0, 16.0, 25.0])
        assert cm.cm_sqrt(v).to_numpy().tolist() == [2.0, 3.0, 4.0, 5.0]
        inv = cm.cm_inv(cm.vector(cm.float32, 2, [2.0, 4.0]))
        assert inv.to_numpy().tolist() == [0.5, 0.25]

    def test_cm_mul_add(self):
        acc = cm.vector(cm.float32, 4, 1.0)
        cm.cm_mul_add(acc, [2, 2, 2, 2], [3, 3, 3, 3])
        assert acc.to_numpy().tolist() == [7.0] * 4


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=32),
       st.integers(-100, 100))
def test_add_matches_numpy_oracle(values, scalar):
    v = cm.vector(cm.int32, len(values), values)
    out = v + scalar
    expect = (np.asarray(values, dtype=np.int32) + scalar).tolist()
    assert out.to_numpy().tolist() == expect


@given(st.lists(st.floats(-1e5, 1e5, allow_nan=False, width=32),
                min_size=2, max_size=16))
def test_sum_matches_numpy(values):
    v = cm.vector(cm.float32, len(values), values)
    expect = float(np.asarray(values, dtype=np.float32).sum(dtype=np.float64))
    assert cm.cm_sum(v) == pytest.approx(expect, rel=1e-5, abs=1e-3)
