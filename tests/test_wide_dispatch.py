"""Grid-vectorized (wide) dispatch: eligibility, chunking, timing parity.

The differential fuzz in test_fuzz_differential.py pins architectural
bit-identity between :class:`WideExecutor` and per-thread sequential
execution; this file covers the dispatch plumbing around it — path
selection in ``Device.run_compiled``, chunked execution under
``max_live_threads``, per-thread scratch, trace/timing parity, and the
observability surface.
"""

import dataclasses

import numpy as np
import pytest

from repro.isa.instructions import Instruction, MessageDesc, MsgKind, Opcode
from repro.isa.wide import WideScratch, WideTracingExecutor, wide_eligible
from repro.memory.surfaces import BufferSurface
from repro.obs import Observability
from repro.sim.device import Device
from repro.workloads import gemm

_VEC = 16


def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


_SAXPY_SIG = [("xbuf", False), ("ybuf", False)]


def _run_saxpy(wide, n_threads=64, max_live_threads=1024, executor=None,
               obs=None, validate="off", jit=False):
    dev = Device(obs=obs) if obs is not None else Device()
    rng = np.random.default_rng(7)
    x = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    y = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    xbuf = dev.buffer(x.copy())
    ybuf = dev.buffer(y.copy())
    kern = dev.compile(_saxpy_body, "wsaxpy", _SAXPY_SIG, ["tid"])
    run = dev.run_compiled(kern, grid=(n_threads,), surfaces=[xbuf, ybuf],
                           scalars=lambda tid: {"tid": tid[0]},
                           name="wsaxpy", wide=wide, jit=jit,
                           max_live_threads=max_live_threads,
                           executor=executor, validate=validate)
    expect = 2.0 * x + y
    got = ybuf.to_numpy().view(np.float32)
    assert np.allclose(got, expect, atol=1e-6)
    return dev, run


def _timing_equal(a, b):
    return all(getattr(a, f.name) == getattr(b, f.name)
               for f in dataclasses.fields(a))


class TestEligibility:
    def test_compiled_programs_are_eligible(self):
        dev = Device()
        kern = dev.compile(_saxpy_body, "wsaxpy", _SAXPY_SIG, ["tid"])
        assert wide_eligible(kern.program)

    def test_unknown_send_kind_is_ineligible(self):
        # Forward-compat guard: a send the wide path has no handler for
        # must route to the sequential path, not silently mis-execute.
        bad = Instruction(Opcode.SEND,
                          msg=MessageDesc(kind=None, surface=0))
        assert not wide_eligible([bad])

    def test_wide_true_on_ineligible_program_raises(self):
        dev = Device()
        kern = dev.compile(_saxpy_body, "wsaxpy", _SAXPY_SIG, ["tid"])
        kern.program[0].msg = None  # corrupt: send without descriptor
        if kern.program[0].opcode is not Opcode.SEND:
            kern.program.insert(0, Instruction(
                Opcode.SEND, msg=MessageDesc(kind=None, surface=0)))
        buf = dev.buffer(np.zeros(_VEC, dtype=np.float32))
        with pytest.raises(ValueError, match="not wide-eligible"):
            dev.run_compiled(kern, grid=(1,), surfaces=[buf, buf],
                             scalars={"tid": 0}, wide=True)


class TestTimingParity:
    def test_saxpy_wide_matches_scalar(self):
        _, run_w = _run_saxpy(wide=True)
        _, run_s = _run_saxpy(wide=False)
        assert _timing_equal(run_w.timing, run_s.timing)

    def test_chunked_wide_matches_unchunked(self):
        # 64 threads in chunks of 9: totals must not depend on chunking.
        _, run_c = _run_saxpy(wide=True, max_live_threads=9)
        _, run_u = _run_saxpy(wide=True)
        assert _timing_equal(run_c.timing, run_u.timing)
        _, run_s = _run_saxpy(wide=False)
        assert _timing_equal(run_c.timing, run_s.timing)

    def test_gemm_wide_matches_scalar_with_breakdown(self):
        a, b, c = gemm.make_inputs(16, 16, 8, seed=3)

        def launch(wide):
            dev = Device(obs=Observability())
            kern = dev.compile(gemm._jit_gemm_body(8), "cm_sgemm_jit",
                               gemm._JIT_SIG, ["tx", "ty"])
            surfs = [dev.image2d(m.copy(), bytes_per_pixel=4)
                     for m in (a, b, c)]
            run = dev.run_compiled(
                kern, (2, 2), surfs,
                scalars=lambda t: {"tx": t[0], "ty": t[1]}, wide=wide)
            return surfs[2].to_numpy().copy(), run

        out_w, run_w = launch(True)
        out_s, run_s = launch(False)
        assert np.array_equal(out_w, out_s)
        assert _timing_equal(run_w.timing, run_s.timing)
        assert run_w.breakdown.buckets == pytest.approx(
            run_s.breakdown.buckets)


class TestScratch:
    def test_spilled_kernel_wide_matches_scalar(self):
        n_vecs = 80  # > 124 free GRFs: forces scratch spills

        def body(cmx, src, out, tid):
            base = tid * (n_vecs * 64)
            vecs = []
            for i in range(n_vecs):
                v = cmx.vector(np.float32, 16)
                cmx.read(src, base + i * 64, v)
                vecs.append(v)
            acc = cmx.vector(np.float32, 16, np.zeros(16))
            for v in reversed(vecs):
                acc += v
            cmx.write(out, tid * 64, acc)

        n_threads = 3

        def launch(wide):
            dev = Device()
            src_data = np.arange(n_threads * n_vecs * 16,
                                 dtype=np.float32)
            src = dev.buffer(src_data.copy())
            out = dev.buffer(np.zeros(n_threads * 16, dtype=np.float32))
            kern = dev.compile(body, "spilly_w",
                               [("src", False), ("out", False)], ["tid"],
                               optimize=False)
            assert kern.allocation.spills > 0
            run = dev.run_compiled(kern, grid=(n_threads,),
                                   surfaces=[src, out],
                                   scalars=lambda t: {"tid": t[0]},
                                   wide=wide)
            return out.to_numpy().view(np.float32).copy(), run

        out_w, run_w = launch(True)
        out_s, run_s = launch(False)
        assert np.array_equal(out_w, out_s)
        assert _timing_equal(run_w.timing, run_s.timing)

    def test_wide_scratch_rows_are_private(self):
        ws = WideScratch(3, 64)
        ws.write_linear_many(np.array([0, 8, 16]),
                             np.arange(12, dtype=np.uint32).reshape(3, 4)
                             .view(np.uint8))
        rows = ws.read_linear_many(np.array([0, 8, 16]), 16)
        assert np.array_equal(rows[0], rows[0])  # self-consistent
        assert not np.array_equal(ws.bytes2d[0], ws.bytes2d[1])

    def test_wide_scratch_resize_keeps_line_tracking(self):
        ws = WideScratch(2, 256)
        total, new = ws.mark_lines_range_many(np.array([0, 64]), 64)
        assert new.sum() == 2
        ws.resize(4)
        assert ws.bytes2d.shape == (4, 256)
        # same lines again: already touched, no new compulsory misses
        total, new = ws.mark_lines_range_many(np.array([0, 64]), 64)
        assert new.sum() == 0


class TestDispatchPlumbing:
    # These tests pin the wide plumbing itself, so they run with
    # validate="off" (the _run_saxpy default); the sanitized
    # first-launch gating of wide=None is covered in test_sanitize.py.
    def test_wide_is_the_default_for_eligible_programs(self):
        dev, _ = _run_saxpy(wide=None)
        # the wide path keeps whole chunks of traces live
        assert dev.profile.peak_live_traces == 64
        assert dev.profile.threads_run == 64

    def test_pooled_wide_executor_reused_across_launches(self):
        pooled = WideTracingExecutor()
        _, run1 = _run_saxpy(wide=None, executor=pooled)
        _, run2 = _run_saxpy(wide=None, executor=pooled)
        _, run_s = _run_saxpy(wide=False)
        assert _timing_equal(run1.timing, run_s.timing)
        assert _timing_equal(run2.timing, run_s.timing)

    def test_dispatch_wide_span_emitted(self):
        from repro import obs as obs_mod
        from repro.obs.tracing import ChromeTraceSink

        sink = ChromeTraceSink()
        with obs_mod.observed(sink=sink, span_metrics=False):
            _run_saxpy(wide=None, max_live_threads=40)
        wide_spans = [e for e in sink.events
                      if e["name"] == "dispatch:wide"]
        assert len(wide_spans) == 2  # 64 threads in chunks of 40 + 24
        assert sorted(e["args"]["threads"] for e in wide_spans) == [24, 40]
        outer = [e for e in sink.events if e["name"] == "dispatch"]
        assert outer and outer[0]["args"]["path"] == "wide"

    def test_functional_only_wide_launch(self):
        dev = Device()
        rng = np.random.default_rng(3)
        x = rng.standard_normal(8 * _VEC).astype(np.float32)
        y = rng.standard_normal(8 * _VEC).astype(np.float32)
        xbuf, ybuf = dev.buffer(x.copy()), dev.buffer(y.copy())
        kern = dev.compile(_saxpy_body, "wsaxpy", _SAXPY_SIG, ["tid"])
        run = dev.run_compiled(kern, grid=(8,), surfaces=[xbuf, ybuf],
                               scalars=lambda tid: {"tid": tid[0]},
                               collect_timing=False, wide=True)
        assert run is None
        assert np.allclose(ybuf.to_numpy().view(np.float32),
                           2.0 * x + y, atol=1e-6)


class TestWideAtomicReduction:
    def test_fast_int_atomic_matches_lane_loop(self):
        # The grouped prefix-sum reduction for add/sub/inc/dec must match
        # the sequential lane loop exactly, including returned old values
        # under heavy same-address collisions and wraparound.
        from repro.isa.dtypes import UD
        from repro.isa.wide import _fast_int_atomic

        rng = np.random.default_rng(5)
        n = 64
        offsets = (rng.integers(0, 4, n) * 4).astype(np.int64)
        operands = rng.integers(0, 2**32, n, dtype=np.uint64) \
            .astype(np.uint32)
        mask = rng.random(n) > 0.3

        ref_surf = BufferSurface(np.arange(16, dtype=np.uint8).copy())
        with np.errstate(all="ignore"):
            ref_old = ref_surf.atomic("add", offsets, operands, UD,
                                      mask=mask)

        surf = BufferSurface(np.arange(16, dtype=np.uint8).copy())
        old = _fast_int_atomic(surf, "add", offsets, operands, UD, mask)
        assert old is not None
        assert np.array_equal(old, ref_old)
        assert np.array_equal(surf.bytes, ref_surf.bytes)

    def test_unsupported_op_falls_back(self):
        from repro.isa.dtypes import D, F
        from repro.isa.wide import _fast_int_atomic

        surf = BufferSurface(np.zeros(16, dtype=np.uint8))
        offs = np.zeros(4, dtype=np.int64)
        ops = np.ones(4, dtype=np.int32)
        assert _fast_int_atomic(surf, "max", offs, ops, D, None) is None
        assert _fast_int_atomic(
            surf, "add", offs, ops.astype(np.float32), F, None) is None
