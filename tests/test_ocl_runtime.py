"""OpenCL SIMT runtime: NDRange mapping, barriers, work-groups."""

import numpy as np
import pytest

from repro import Device, ocl


class TestNDRange:
    def test_global_ids_cover_range(self):
        dev = Device()
        seen = []

        def kernel():
            seen.extend(ocl.get_global_id(0).to_numpy().tolist())

        ocl.enqueue(dev, kernel, global_size=64, local_size=32)
        assert sorted(seen) == list(range(64))

    def test_2d_ids(self):
        dev = Device()
        seen = set()

        def kernel():
            xs = ocl.get_global_id(0).to_numpy()
            ys = ocl.get_global_id(1).to_numpy()
            seen.update(zip(xs.tolist(), ys.tolist()))

        ocl.enqueue(dev, kernel, global_size=(32, 4), local_size=(16, 2))
        assert len(seen) == 128
        assert (31, 3) in seen

    def test_local_and_group_queries(self):
        dev = Device()
        rows = []

        def kernel():
            rows.append((ocl.get_group_id(0), ocl.get_local_size(0),
                         ocl.get_num_groups(0), ocl.get_sub_group_size(),
                         int(ocl.get_local_id(0).vals[0])))

        ocl.enqueue(dev, kernel, global_size=64, local_size=32, simd=16)
        assert (0, 32, 2, 16, 0) in rows
        assert (1, 32, 2, 16, 16) in rows

    def test_indivisible_sizes_rejected(self):
        dev = Device()
        with pytest.raises(ValueError):
            ocl.enqueue(dev, lambda: None, global_size=60, local_size=32)
        with pytest.raises(ValueError):
            ocl.enqueue(dev, lambda: None, global_size=64, local_size=24,
                        simd=16)

    def test_simd8_dispatch(self):
        dev = Device()
        widths = []

        def kernel():
            widths.append(ocl.get_global_id(0).width)

        ocl.enqueue(dev, kernel, global_size=16, local_size=8, simd=8)
        assert widths == [8, 8]


class TestBarriers:
    def test_barrier_orders_slm_phases(self):
        dev = Device()
        data = dev.buffer(np.arange(32, dtype=np.uint32))
        out = dev.buffer(np.zeros(32, dtype=np.uint32))

        def kernel(src, dst, slm):
            gid = ocl.get_global_id(0)
            lid = ocl.get_local_id(0)
            v = ocl.load(src, gid, dtype=np.uint32)
            ocl.slm_store(slm, lid, v)
            yield ocl.barrier()
            n = ocl.get_local_size(0)
            r = ocl.slm_load(slm, (n - 1) - lid, dtype=np.uint32)
            ocl.store(dst, gid, r)

        ocl.enqueue(dev, kernel, 32, 32, args=(data, out), slm_bytes=128)
        assert out.to_numpy().tolist() == list(range(31, -1, -1))

    def test_barrier_divergence_detected(self):
        dev = Device()

        def kernel(slm):
            if ocl.get_group_id(0) == 0 and \
                    int(ocl.get_local_id(0).vals[0]) == 0:
                yield ocl.barrier()

        with pytest.raises(RuntimeError, match="divergence"):
            ocl.enqueue(dev, kernel, 32, 32, slm_bytes=64)

    def test_non_barrier_yield_rejected(self):
        dev = Device()

        def kernel():
            yield 42

        with pytest.raises(RuntimeError, match="barrier"):
            ocl.enqueue(dev, kernel, 16, 16)

    def test_barriers_counted_in_timing(self):
        dev = Device()

        def kernel(slm):
            yield ocl.barrier()
            yield ocl.barrier()

        res = ocl.enqueue(dev, kernel, 32, 32, slm_bytes=64)
        assert res.run.timing.barriers == 2 * 2  # 2 subgroups x 2 barriers


class TestSLMScoping:
    def test_slm_is_per_workgroup(self):
        dev = Device()
        out = dev.buffer(np.zeros(4, dtype=np.uint32))

        def kernel(dst, slm):
            lid = ocl.get_local_id(0)
            wg = ocl.get_group_id(0)
            first = lid == 0
            ocl.slm_store(slm, lid,
                          ocl.SimtValue.splat(wg + 1, lid.width, np.uint32),
                          mask=first)
            yield ocl.barrier()
            v = ocl.slm_load(slm, lid * 0, dtype=np.uint32)
            ocl.store(dst, ocl.SimtValue.splat(wg, lid.width, np.uint32),
                      v, mask=first)

        ocl.enqueue(dev, kernel, 64, 16, args=(out,), slm_bytes=64)
        assert out.to_numpy().tolist() == [1, 2, 3, 4]
