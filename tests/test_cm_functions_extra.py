"""Extended CM stdlib functions: dp4, frc, avg, mask packing."""

import pytest
from hypothesis import given, strategies as st

from repro import cm


class TestDp4:
    def test_groups_of_four(self):
        x = cm.vector(cm.float32, 8, [1, 2, 3, 4, 1, 0, 0, 0])
        y = cm.vector(cm.float32, 8, [1, 1, 1, 1, 2, 2, 2, 2])
        out = cm.cm_dp4(x, y)
        assert out.to_numpy().tolist() == [10.0] * 4 + [2.0] * 4

    def test_requires_multiple_of_four(self):
        with pytest.raises(ValueError):
            cm.cm_dp4(cm.vector(cm.float32, 6), 1.0)


class TestFrcAvg:
    def test_frc(self):
        v = cm.vector(cm.float32, 4, [1.25, -0.75, 2.0, 0.5])
        out = cm.cm_frc(v)
        assert out.to_numpy().tolist() == [0.25, 0.25, 0.0, 0.5]

    def test_avg_rounds_up(self):
        a = cm.vector(cm.int32, 4, [1, 2, 3, 5])
        out = cm.cm_avg(a, 2)
        assert out.to_numpy().tolist() == [2, 2, 3, 4]

    def test_avg_rejects_float(self):
        with pytest.raises(TypeError):
            cm.cm_avg(cm.vector(cm.float32, 4), 1.0)


class TestMaskPacking:
    def test_roundtrip(self):
        mask = cm.vector(cm.ushort, 8, [1, 0, 1, 1, 0, 0, 0, 1])
        bits = cm.cm_pack_mask(mask)
        assert bits == 0b10001101
        back = cm.cm_unpack_mask(bits, 8)
        assert back.to_numpy().tolist() == [1, 0, 1, 1, 0, 0, 0, 1]

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            cm.cm_pack_mask(cm.vector(cm.ushort, 64, 1))

    @given(st.integers(0, 2**16 - 1))
    def test_pack_unpack_identity(self, bits):
        mask = cm.cm_unpack_mask(bits, 16)
        assert cm.cm_pack_mask(mask) == bits
