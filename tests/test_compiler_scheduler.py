"""The finalizer's send scheduler: loads hoist, semantics survive."""

import numpy as np

from repro.compiler import compile_kernel
from repro.compiler.frontend import trace_kernel
from repro.compiler.passes import analyze_bales
from repro.compiler.scheduler import dependency_distance, schedule_sends
from repro.compiler.visa import emit_visa
from repro.memory.surfaces import BufferSurface


def _visa_of(body, surfaces):
    fn = trace_kernel(body, "k", surfaces)
    return emit_visa(fn, analyze_bales(fn))


def test_independent_load_hoists_past_compute():
    def body(cmx, a, b, out):
        va = cmx.vector(np.float32, 16)
        cmx.read(a, 0, va)
        acc = cmx.vector(np.float32, 16, np.zeros(16))
        for _ in range(4):
            acc += va * 2.0
        vb = cmx.vector(np.float32, 16)
        cmx.read(b, 0, vb)          # independent of the adds above it
        out_v = cmx.vector(np.float32, 16)
        out_v.assign(acc + vb)
        cmx.write(out, 0, out_v)

    prog = _visa_of(body, [("a", False), ("b", False), ("out", False)])
    before = dependency_distance(prog)
    moved = schedule_sends(prog)
    after = dependency_distance(prog)
    assert moved >= 1
    assert max(after.values()) > max(before.values())


def test_dependent_load_does_not_hoist_past_producer():
    def body(cmx, a, out):
        idx = cmx.vector(np.uint32, 8, np.arange(8))
        shifted = cmx.vector(np.uint32, 8, np.zeros(8))
        shifted.assign(idx + 8)
        v = cmx.vector(np.float32, 8)
        cmx.read_scattered(a, 0, shifted, v)   # depends on `shifted`
        cmx.write(out, 0, v)

    prog = _visa_of(body, [("a", False), ("out", False)])
    schedule_sends(prog)
    ops = [i.msg["kind"] if i.msg else i.op.value for i in prog.instrs]
    gather_pos = ops.index("gather")
    # The address-producing add must still precede the gather.
    assert "add" in ops[:gather_pos]


def test_same_surface_order_preserved():
    def body(cmx, buf):
        v = cmx.vector(np.float32, 16)
        cmx.read(buf, 0, v)
        v2 = cmx.vector(np.float32, 16)
        v2.assign(v + 1.0)
        cmx.write(buf, 0, v2)
        v3 = cmx.vector(np.float32, 16)
        cmx.read(buf, 0, v3)          # must stay after the write
        cmx.write(buf, 64, v3)

    prog = _visa_of(body, [("buf", False)])
    schedule_sends(prog)
    kinds = [i.msg["kind"] for i in prog.instrs if i.msg]
    assert kinds == ["oword.read", "oword.write", "oword.read",
                     "oword.write"]


def test_scheduled_kernel_still_correct():
    def body(cmx, a, b, out):
        va = cmx.vector(np.float32, 16)
        cmx.read(a, 0, va)
        acc = cmx.vector(np.float32, 16, np.zeros(16))
        for _ in range(3):
            acc += va
        vb = cmx.vector(np.float32, 16)
        cmx.read(b, 0, vb)
        res = cmx.vector(np.float32, 16)
        res.assign(acc + vb)
        cmx.write(out, 0, res)

    k = compile_kernel(body, "k", [("a", False), ("b", False),
                                   ("out", False)])
    a = BufferSurface(np.arange(16, dtype=np.float32))
    b = BufferSurface(np.full(16, 10.0, dtype=np.float32))
    out = BufferSurface(np.zeros(16, dtype=np.float32))
    k.run([a, b, out])
    assert out.to_numpy().tolist() == [3.0 * i + 10.0 for i in range(16)]
