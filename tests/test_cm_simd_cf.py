"""SIMD (divergent) control flow: simd_if / orelse masking."""

import numpy as np
import pytest

from repro import Device, cm


def run_kernel(fn):
    Device().run_cm(fn, grid=(1,))


class TestSimdIf:
    def test_paper_example(self):
        """The SIMD_IF_BEGIN/SIMD_ELSE example from Section IV-D."""
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 16, 0)
            cond = cm.vector(cm.ushort, 16,
                             [1, 0] * 8)
            with cm.simd_if(cond > 0) as branch:
                v.select(16, 1, 0).assign(1)
            with branch.orelse():
                v.select(16, 1, 0).assign(2)
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [1, 2] * 8

    def test_masked_inplace_update(self):
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.int32, 8, np.arange(8))
            cond = v < 4
            with cm.simd_if(cond):
                v += 100
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [100, 101, 102, 103, 4, 5, 6, 7]

    def test_nested_masks_intersect(self):
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.int32, 8, 0)
            a = cm.vector(cm.int32, 8, np.arange(8))
            with cm.simd_if(a < 6):
                with cm.simd_if(a > 2):
                    v += 1
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [0, 0, 0, 1, 1, 1, 0, 0]

    def test_width_mismatch_rejected(self):
        @cm.cm_kernel
        def kernel():
            v8 = cm.vector(cm.int32, 8)
            cond = cm.vector(cm.ushort, 16, 1)
            with cm.simd_if(cond > 0):
                v8 += 1

        with pytest.raises(cm.CMTypeError):
            run_kernel(kernel)

    def test_nested_width_mismatch_rejected(self):
        @cm.cm_kernel
        def kernel():
            a = cm.vector(cm.ushort, 16, 1)
            b = cm.vector(cm.ushort, 8, 1)
            with cm.simd_if(a > 0):
                with cm.simd_if(b > 0):
                    pass

        with pytest.raises(ValueError):
            run_kernel(kernel)

    def test_requires_kernel_context(self):
        with pytest.raises(RuntimeError):
            with cm.simd_if(np.asarray([1, 0])):
                pass

    def test_all_false_mask_no_writes(self):
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.int32, 4, 7)
            cond = cm.vector(cm.ushort, 4, 0)
            with cm.simd_if(cond > 0):
                v.assign(0)
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [7] * 4

    def test_scattered_read_masked(self):
        dev = Device()
        src = dev.buffer(np.arange(8, dtype=np.uint32))
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 4, 99)
            cond = cm.vector(cm.ushort, 4, [1, 0, 1, 0])
            with cm.simd_if(cond > 0):
                cm.read_scattered(src, 0, [4, 5, 6, 7], v)
            out["v"] = v.to_numpy()

        dev.run_cm(kernel, grid=(1,))
        assert out["v"].tolist() == [4, 99, 6, 99]


class TestSimdIfOrelseNested:
    def test_orelse_under_enclosing_mask(self):
        """An else-branch only runs lanes active in the *enclosing* mask.

        Lanes 6 and 7 fail the outer condition, so even though they also
        fail the inner condition they must not take the orelse writes.
        """
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.int32, 8, 0)
            a = cm.vector(cm.int32, 8, np.arange(8))
            with cm.simd_if(a < 6):
                with cm.simd_if(a > 2) as inner:
                    v.assign(1)
                with inner.orelse():
                    v.assign(2)
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [2, 2, 2, 1, 1, 1, 0, 0]

    def test_orelse_arms_partition_active_lanes(self):
        """then ∪ else covers exactly the enclosing active lanes, once."""
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.int32, 8, 0)
            a = cm.vector(cm.int32, 8, np.arange(8))
            with cm.simd_if(a >= 2):
                with cm.simd_if(a % 2 == 0) as branch:
                    v += 10
                with branch.orelse():
                    v += 20
            out["v"] = v.to_numpy()

        run_kernel(kernel)
        assert out["v"].tolist() == [0, 0, 10, 20, 10, 20, 10, 20]


class TestSimdWhile:
    def test_trip_count_divergence(self):
        """Each lane iterates its own number of times (do-while: >= 1)."""
        out = {}

        @cm.cm_kernel
        def kernel():
            k = cm.vector(cm.int32, 8, [0, 1, 2, 3, 4, 3, 2, 1])
            acc = cm.vector(cm.int32, 8, 0)

            def body():
                acc.assign(acc + 1)
                k.assign(k - 1)
                return k > 0

            cm.simd_while(body)
            out["acc"] = acc.to_numpy()

        run_kernel(kernel)
        # do-while semantics: every lane runs the body at least once,
        # then per-lane until its own k reaches zero.
        assert out["acc"].tolist() == [1, 1, 2, 3, 4, 3, 2, 1]

    def test_while_under_enclosing_if(self):
        """Lanes outside the enclosing simd_if never enter the loop body."""
        out = {}

        @cm.cm_kernel
        def kernel():
            a = cm.vector(cm.int32, 8, np.arange(8))
            k = cm.vector(cm.int32, 8, 2)
            acc = cm.vector(cm.int32, 8, 0)
            with cm.simd_if(a < 4):

                def body():
                    acc.assign(acc + 1)
                    k.assign(k - 1)
                    return k > 0

                cm.simd_while(body)
            out["acc"] = acc.to_numpy()
            out["k"] = k.to_numpy()

        run_kernel(kernel)
        assert out["acc"].tolist() == [2, 2, 2, 2, 0, 0, 0, 0]
        # excluded lanes keep their loop counter untouched
        assert out["k"].tolist() == [0, 0, 0, 0, 2, 2, 2, 2]

    def test_width_mismatch_rejected(self):
        @cm.cm_kernel
        def kernel():
            a = cm.vector(cm.ushort, 16, 1)
            with cm.simd_if(a > 0):
                # loop condition is narrower than the enclosing mask
                cm.simd_while(lambda: np.zeros(8, dtype=bool))

        with pytest.raises(ValueError):
            run_kernel(kernel)


class TestMaskStackErrors:
    def test_pop_mask_underflow(self):
        from repro.sim.context import ThreadContext

        thread = ThreadContext(trace=None)
        with pytest.raises(IndexError):
            thread.pop_mask()

    def test_exit_without_enter_underflows(self):
        @cm.cm_kernel
        def kernel():
            cond = cm.vector(cm.ushort, 4, 1)
            branch = cm.simd_if(cond > 0)
            # __exit__ without __enter__: nothing was pushed, so the
            # simd-join's pop must underflow loudly instead of silently
            # corrupting an enclosing region's mask.
            branch.__exit__(None, None, None)

        with pytest.raises(IndexError):
            run_kernel(kernel)
