"""The select/region operations: Fig. 1 and Fig. 2 semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import cm


class TestVectorSelect:
    def test_fig1_vector_select(self):
        """v.select<4,2>(1) refers to the odd elements of an 8-float v."""
        v = cm.vector(cm.float32, 8, np.arange(8))
        ref = v.select(4, 2, 1)
        assert ref.to_numpy().tolist() == [1.0, 3.0, 5.0, 7.0]

    def test_select_is_lvalue(self):
        v = cm.vector(cm.float32, 8, np.arange(8))
        v.select(4, 2, 1).assign([10, 30, 50, 70])
        assert v.to_numpy().tolist() == [0, 10, 2, 30, 4, 50, 6, 70]

    def test_select_augmented_assign(self):
        v = cm.vector(cm.int32, 8, np.arange(8))
        ref = v.select(4, 2, 0)
        ref += 100
        assert v.to_numpy().tolist() == [100, 1, 102, 3, 104, 5, 106, 7]

    def test_select_bounds_checked(self):
        v = cm.vector(cm.int32, 8)
        with pytest.raises(IndexError):
            v.select(4, 2, 2)

    def test_nested_select(self):
        v = cm.vector(cm.int32, 16, np.arange(16))
        outer = v.select(8, 2, 0)      # 0,2,4,...,14
        inner = outer.select(4, 2, 1)  # 2,6,10,14
        assert inner.to_numpy().tolist() == [2, 6, 10, 14]
        inner.assign(0)
        assert v.to_numpy()[2] == 0 and v.to_numpy()[14] == 0

    def test_paper_rdregion_example(self):
        """b = a.select<4,2>(1); a.select<4,2>(0) = b (Section V)."""
        a = cm.vector(cm.int32, 8, np.arange(8))
        b = cm.vector(cm.int32, 4, a.select(4, 2, 1))
        a.select(4, 2, 0).assign(b)
        assert b.to_numpy().tolist() == [1, 3, 5, 7]
        assert a.to_numpy().tolist() == [1, 1, 3, 3, 5, 5, 7, 7]


class TestMatrixSelect:
    def test_fig1_matrix_select(self):
        """m.select<2,2,2,4>(1,2) picks 4 elements of a 4x8 matrix."""
        m = cm.matrix(cm.int32, 4, 8, np.arange(32))
        s = m.select(2, 2, 2, 4, 1, 2)
        assert s.to_numpy().tolist() == [[10, 14], [26, 30]]

    def test_fig2_6x24_from_8x32(self):
        """The linear filter's sub-matrix select (Fig. 2)."""
        m = cm.matrix(cm.uchar, 8, 32, np.arange(256) % 256)
        s = m.select(6, 1, 24, 1, 1, 3)
        expect = (np.arange(256).reshape(8, 32) % 256)[1:7, 3:27]
        assert np.array_equal(s.to_numpy(), expect)

    def test_matrix_select_write_through(self):
        m = cm.matrix(cm.int32, 4, 4, np.zeros(16))
        m.select(2, 2, 2, 2, 0, 0).assign([[1, 2], [3, 4]])
        out = m.to_numpy()
        assert out[0, 0] == 1 and out[0, 2] == 2
        assert out[2, 0] == 3 and out[2, 2] == 4

    def test_row_column(self):
        m = cm.matrix(cm.int32, 3, 4, np.arange(12))
        assert m.row(1).to_numpy().tolist() == [4, 5, 6, 7]
        assert m.column(2).to_numpy().tolist() == [2, 6, 10]
        m.row(0).assign(0)
        assert m.to_numpy()[0].tolist() == [0, 0, 0, 0]

    def test_vector_ref_from_matrix_row(self):
        """vector_ref<int, 8> vref(m.row(2)) from Section IV-A."""
        m = cm.matrix(cm.int32, 4, 8, np.arange(32))
        vref = m.row(2)
        assert vref.to_numpy().tolist() == list(range(16, 24))
        vref += 1
        assert m[2, 0] == 17


class TestIselectReplicateFormat:
    def test_iselect_gather(self):
        """v.iselect({0,1,2,2}) from Section IV-A."""
        v = cm.vector(cm.float32, 16, np.arange(16))
        idx = cm.vector(cm.ushort, 4, [0, 1, 2, 2])
        out = v.iselect(idx)
        assert out.to_numpy().tolist() == [0.0, 1.0, 2.0, 2.0]

    def test_iselect_out_of_range(self):
        v = cm.vector(cm.float32, 4)
        with pytest.raises(IndexError):
            v.iselect([5])

    def test_replicate_paper_example(self):
        """v.replicate<2,4,4,0>(2) == {v[2]x4, v[6]x4} (Section IV-A)."""
        v = cm.vector(cm.float32, 8, np.arange(8))
        out = v.replicate(2, 4, 4, 0, 2)
        assert out.to_numpy().tolist() == [2.0] * 4 + [6.0] * 4

    def test_replicate_blocks(self):
        v = cm.vector(cm.int32, 8, np.arange(8))
        out = v.replicate(2, 1, 2, 0, 0)   # [a, a, b, b]
        assert out.to_numpy().tolist() == [0, 0, 1, 1]

    def test_format_reinterpret_shape(self):
        """v.format<char,4,8>() on 8 floats (Section IV-A)."""
        v = cm.vector(cm.float32, 8, np.arange(8))
        m = v.format(cm.char, 4, 8)
        assert (m.rows, m.cols) == (4, 8)

    def test_format_aliases_storage(self):
        v = cm.vector(cm.uint, 4, [0, 0, 0, 0])
        bytes_view = v.format(cm.uchar)
        bytes_view[0] = 0xFF
        assert v.to_numpy()[0] == 0xFF

    def test_format_size_mismatch(self):
        v = cm.vector(cm.uchar, 6)
        with pytest.raises(cm.CMTypeError):
            v.format(cm.uint)

    def test_transpose_2x2_idiom(self):
        """The paper's 2x2 register transpose (Section VI-A-5)."""
        v = cm.vector(cm.float32, 4, [1, 2, 3, 4])  # [a b c d]
        v0 = v.replicate(2, 1, 2, 0, 0)             # [a a b b]
        v1 = v.replicate(2, 1, 2, 0, 2)             # [c c d d]
        v2 = cm.vector(cm.float32, 4)
        v2.merge(v0, v1, [1, 0, 1, 0])
        assert v2.to_numpy().tolist() == [1.0, 3.0, 2.0, 4.0]


@given(st.integers(1, 8), st.integers(1, 3), st.integers(0, 8))
def test_select_matches_numpy_slicing(size, stride, offset):
    n = 32
    if offset + (size - 1) * stride >= n:
        return
    v = cm.vector(cm.int32, n, np.arange(n))
    ref = v.select(size, stride, offset)
    expect = np.arange(n)[offset:offset + size * stride:stride][:size]
    assert ref.to_numpy().tolist() == expect.tolist()


@given(st.integers(2, 6), st.integers(2, 6))
def test_matrix_select_identity(rows, cols):
    m = cm.matrix(cm.int32, rows, cols, np.arange(rows * cols))
    s = m.select(rows, 1, cols, 1, 0, 0)
    assert np.array_equal(s.to_numpy(), m.to_numpy())
