"""Fuzzing the compiler: random region programs, compiled vs numpy.

Random sequences of strided reads, writes, and arithmetic over one
vector are executed three ways — a plain numpy oracle, the eager CM
machine, and the fully compiled Gen binary — and must agree bit-exactly.
This family of tests is what caught the legalization src/dst aliasing
hazard (an op split into chunks must not read registers an earlier
chunk wrote).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import cm
from repro.compiler import compile_kernel
from repro.memory.surfaces import BufferSurface

N = 32


def _legal_select(draw):
    size = draw(st.sampled_from([2, 4, 8, 16]))
    stride = draw(st.integers(1, 3))
    offset = draw(st.integers(0, N - 1 - (size - 1) * stride))
    return size, stride, offset


_STEP = st.builds(
    lambda kind, a, b, c: (kind, a, b, c),
    st.sampled_from(["self_assign", "add_const", "mul_const",
                     "region_add"]),
    st.integers(0, 10**6), st.integers(0, 10**6), st.integers(-9, 9))


def _apply_numpy(steps, data):
    v = data.astype(np.int64)
    for kind, a, b, c in steps:
        size, stride, offset = _select_params(a, b)
        idx = offset + np.arange(size) * stride
        if kind == "self_assign":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                idx2 = offset2 + np.arange(size2) * stride2
                v[idx] = v[idx2].copy()
        elif kind == "add_const":
            v[idx] += c
        elif kind == "mul_const":
            v[idx] *= c
        elif kind == "region_add":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                idx2 = offset2 + np.arange(size2) * stride2
                v[idx] += v[idx2].copy()
    return (v & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)


def _select_params(seed_a, seed_b):
    size = [2, 4, 8, 16][seed_a % 4]
    stride = 1 + (seed_b % 3)
    while (size - 1) * stride >= N:
        size //= 2
    max_off = N - 1 - (size - 1) * stride
    offset = (seed_a // 4) % (max_off + 1)
    return size, stride, offset


def _apply_cm_ops(cmx_or_cm, v, steps):
    for kind, a, b, c in steps:
        size, stride, offset = _select_params(a, b)
        ref = v.select(size, stride, offset)
        if kind == "self_assign":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                ref.assign(v.select(size2, stride2, offset2))
        elif kind == "add_const":
            ref += c
        elif kind == "mul_const":
            ref *= c
        elif kind == "region_add":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                ref += v.select(size2, stride2, offset2)


@settings(max_examples=40, deadline=None)
@given(st.lists(_STEP, min_size=1, max_size=6), st.integers(0, 2**31 - 1))
def test_compiled_matches_numpy_oracle(steps, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, N).astype(np.int32)
    expect = _apply_numpy(steps, data)

    def body(cmx, buf):
        v = cmx.vector(np.int32, N)
        cmx.read(buf, 0, v)
        _apply_cm_ops(cmx, v, steps)
        cmx.write(buf, 0, v)

    k = compile_kernel(body, "fuzz", [("buf", False)])
    buf = BufferSurface(data.copy())
    k.run([buf])
    assert buf.to_numpy().tolist() == expect.tolist()


@settings(max_examples=40, deadline=None)
@given(st.lists(_STEP, min_size=1, max_size=6), st.integers(0, 2**31 - 1))
def test_eager_matches_numpy_oracle(steps, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, N).astype(np.int32)
    expect = _apply_numpy(steps, data)
    v = cm.vector(cm.int32, N, data)
    _apply_cm_ops(cm, v, steps)
    assert v.to_numpy().tolist() == expect.tolist()


# -- wide executor vs per-thread sequential execution -------------------------
#
# The grid-vectorized WideExecutor claims bit-identical architectural
# state to running the same straight-line program once per thread on the
# sequential FunctionalExecutor (GRF bytes, flag registers, and shared
# surface contents — including atomics, whose same-address collisions
# must resolve in thread order).  Random programs are hand-built at the
# Instruction level because the frontend never emits atomics directly.

from repro.compiler.finalizer import VectorImmediate  # noqa: E402
from repro.isa.dtypes import D, F, UB, UD, UW  # noqa: E402
from repro.isa.executor import FunctionalExecutor  # noqa: E402
from repro.isa.grf import RegOperand  # noqa: E402
from repro.isa.instructions import (  # noqa: E402
    CondMod, FlagOperand, Immediate, Instruction, MathFn, MessageDesc,
    MsgKind, Opcode, Predicate,
)
from repro.isa.regions import Region  # noqa: E402
from repro.isa.wide import WideExecutor  # noqa: E402
from repro.sanitize import RaceDetector  # noqa: E402

_TIDS = [0, 1, 2, 3, 7]          # includes a gap so addresses collide unevenly
_TID_BASE = 32                   # r1.0:d
_SURF_WORDS = 64                 # 256-byte buffer, dword-addressed
_ADDR_MASK = _SURF_WORDS - 1

_DATA = (2, 3, 4, 5)             # :d working registers
_FREG = 6                        # :f working register
_AREG = 8                        # :ud element-offset register
_PREG = 9                        # payload register
_OREG = 10                       # atomic old-value register
_SREG = 11                       # thread-private scatter offsets
_TREG = 12                       # scratch for tid*8

_ALU_OPS = [Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.XOR,
            Opcode.MIN, Opcode.MAX]
_CONDS = [CondMod.EQ, CondMod.NE, CondMod.LT, CondMod.LE, CondMod.GT,
          CondMod.GE]
_ATOMIC_OPS = ["add", "sub", "inc", "dec", "min", "max", "xchg", "and",
               "or", "xor"]


def _src(reg, dt, n=8, sub=0):
    return RegOperand(reg, sub, dt, Region.contiguous(min(n, 8)))


def _bcast(reg, dt, sub=0):
    return RegOperand(reg, sub, dt, Region.scalar())


def _dst(reg, dt, sub=0):
    return RegOperand(reg, sub, dt)


def _prologue():
    """Seed registers with lane- and thread-varying values from r1 (tid)."""
    out = []
    for i, r in enumerate(_DATA):
        lanes = tuple((i * 37 + j * 11 + 5) % 251 - 100 for j in range(8))
        out.append(Instruction(Opcode.MOV, 8, _dst(r, D),
                               [VectorImmediate(lanes, D)]))
        out.append(Instruction(Opcode.ADD, 8, _dst(r, D),
                               [_src(r, D), _bcast(1, D)]))
    out.append(Instruction(Opcode.MOV, 8, _dst(_FREG, F), [_src(2, D)]))
    out.append(Instruction(Opcode.MOV, 8, _dst(_AREG, UD),
                           [VectorImmediate(tuple(range(0, 24, 3)), UD)]))
    out.append(Instruction(Opcode.ADD, 8, _dst(_AREG, UD),
                           [_src(_AREG, UD), _bcast(1, D)]))
    out.append(Instruction(Opcode.AND, 8, _dst(_AREG, UD),
                           [_src(_AREG, UD), Immediate(_ADDR_MASK, UD)]))
    # Scatter offsets fold into a private 8-word window per thread
    # (tid*8 + lane offset): non-atomic cross-thread writes to the same
    # bytes are a data race, so the generator keeps them disjoint and
    # the race detector certifies that it succeeded (see
    # _run_sequential).  Gathers and atomics keep the shared _AREG
    # pattern — reads of a read-only surface and colliding atomics are
    # race-free and exactly the ordered cases worth fuzzing.
    out.append(Instruction(Opcode.AND, 8, _dst(_SREG, UD),
                           [_src(_AREG, UD), Immediate(7, UD)]))
    out.append(Instruction(Opcode.SHL, 8, _dst(_TREG, UD),
                           [_bcast(1, UD), Immediate(3, UD)]))
    out.append(Instruction(Opcode.ADD, 8, _dst(_SREG, UD),
                           [_src(_SREG, UD), _bcast(_TREG, UD)]))
    out.append(Instruction(Opcode.MOV, 8, _dst(_PREG, D), [_src(3, D)]))
    return out


_MAX_STEPS = 10


def _build_step(kind, a, b, c, idx=0):
    """One deterministic instruction (or a few) from drawn integers."""
    pred = None
    if c % 3 == 1:
        pred = Predicate(FlagOperand(0), invert=bool(c % 2))
    if kind == "alu":
        op = _ALU_OPS[a % len(_ALU_OPS)]
        dt = D if b % 2 else UD
        dr, s0, s1 = (_DATA[a % 4], _DATA[b % 4], _DATA[(a + b) % 4])
        return [Instruction(op, 8, _dst(dr, dt),
                            [_src(s0, dt), _src(s1, dt)], pred=pred,
                            sat=bool(a % 5 == 0))]
    if kind == "w_alu":
        op = _ALU_OPS[b % len(_ALU_OPS)]
        return [Instruction(op, 16, _dst(_DATA[a % 4], UW),
                            [RegOperand(_DATA[b % 4], 0, UW,
                                        Region.contiguous(8)),
                             Immediate(c % 97, UW)], sat=bool(b % 2))]
    if kind == "b_alu":
        return [Instruction(Opcode.ADD, 16, _dst(_DATA[a % 4], UB),
                            [RegOperand(_DATA[b % 4], 0, UB,
                                        Region.contiguous(8)),
                             Immediate(c % 200, UW)], sat=True)]
    if kind == "shift":
        op = [Opcode.SHL, Opcode.SHR, Opcode.ASR][a % 3]
        return [Instruction(op, 8, _dst(_DATA[a % 4], UD),
                            [_src(_DATA[b % 4], UD),
                             Immediate(c % 31, UD)])]
    if kind == "mad":
        return [Instruction(Opcode.MAD, 8, _dst(_FREG, F),
                            [_src(_FREG, F), _src(2, D),
                             Immediate(float(c) / 7.0, F)], pred=pred)]
    if kind == "math":
        fn = [MathFn.INV, MathFn.SQRT, MathFn.EXP][a % 3]
        return [Instruction(Opcode.MATH, 8, _dst(_FREG, F),
                            [_src(_FREG, F)], math_fn=fn)]
    if kind == "cmp":
        cond = _CONDS[a % len(_CONDS)]
        dst = _dst(_DATA[c % 4], D) if c % 4 == 0 else None
        return [Instruction(Opcode.CMP, 8, dst,
                            [_src(_DATA[a % 4], D), _src(_DATA[b % 4], D)],
                            cond_mod=cond, flag=FlagOperand(0))]
    if kind == "sel":
        return [Instruction(Opcode.SEL, 8, _dst(_DATA[c % 4], D),
                            [_src(_DATA[a % 4], D), _src(_DATA[b % 4], D)],
                            pred=Predicate(FlagOperand(0),
                                           invert=bool(a % 2)))]
    if kind == "pred_mov":
        return [Instruction(Opcode.MOV, 8, _dst(_DATA[b % 4], D),
                            [_src(_DATA[a % 4], D)],
                            pred=Predicate(FlagOperand(0),
                                           invert=bool(c % 2)))]
    # Memory steps keep the program *race-free across threads*: gathers
    # read surface 0 (never written), scatters hit thread-private
    # windows of surface 1 (_SREG), and each atomic step gets a private
    # window of surface 2 (addr0).  A read that observes another
    # thread's write is a data race — undefined on hardware, and the
    # one thing the lockstep model legitimately reorders relative to
    # sequential per-thread dispatch.  This discipline is not taken on
    # faith: _run_sequential runs the repro.sanitize race detector over
    # every generated program and asserts the race-free verdict.
    if kind == "gather":
        msg = MessageDesc(MsgKind.GATHER, surface=0, addr_reg=_AREG,
                          payload_reg=_PREG, payload_bytes=32,
                          elem_dtype=D)
        return [Instruction(Opcode.SEND, 8, None, [], msg=msg, pred=pred)]
    if kind == "scatter":
        msg = MessageDesc(MsgKind.SCATTER, surface=1, addr_reg=_SREG,
                          payload_reg=_PREG, payload_bytes=32,
                          elem_dtype=D)
        return [Instruction(Opcode.SEND, 8, None, [], msg=msg, pred=pred)]
    if kind == "atomic":
        op = _ATOMIC_OPS[a % len(_ATOMIC_OPS)]
        needs_src = op not in ("inc", "dec")
        msg = MessageDesc(MsgKind.ATOMIC, surface=2,
                          addr0=Immediate(idx * _SURF_WORDS, UD),
                          addr_reg=_AREG,
                          payload_reg=_PREG if needs_src else -1,
                          payload_bytes=32 if needs_src else 0,
                          atomic_op=op, elem_dtype=UD if b % 2 else D)
        dst = _dst(_OREG, msg.elem_dtype) if b % 3 else None
        return [Instruction(Opcode.SEND, 8, dst, [], msg=msg, pred=pred)]
    raise AssertionError(kind)


_WIDE_STEP = st.builds(
    lambda kind, a, b, c: (kind, a, b, c),
    st.sampled_from(["alu", "w_alu", "b_alu", "shift", "mad", "math",
                     "cmp", "sel", "pred_mov", "gather", "scatter",
                     "atomic"]),
    st.integers(0, 10**6), st.integers(0, 10**6), st.integers(0, 10**6))


def _build_program(steps):
    prog = list(_prologue())
    for idx, step in enumerate(steps):
        prog.extend(_build_step(*step, idx=idx))
    return prog


def _make_surfaces(seed):
    rng = np.random.default_rng(seed)

    def buf(words):
        data = rng.integers(0, 2**31, words, dtype=np.int64)
        return BufferSurface(data.astype(np.int32).view(np.uint8).copy())

    return {0: buf(_SURF_WORDS),                    # gather source
            1: buf(_SURF_WORDS),                    # scatter target
            2: buf(_SURF_WORDS * (_MAX_STEPS + 1))}  # atomic windows


def _surface_bytes(table):
    return {k: s.bytes.copy() for k, s in table.items()}


def _run_sequential(program, seed, certify=True):
    table = _make_surfaces(seed)
    detector = RaceDetector()
    detector.attach(table.values())
    ex = FunctionalExecutor(table)
    grfs, flags = [], []
    for tid in _TIDS:
        ex.reset()
        detector.begin_thread(tid)
        ex.grf.write_bytes(_TID_BASE, np.asarray([tid], dtype=np.int32))
        ex.run(program)
        grfs.append(ex.grf.bytes.copy())
        flags.append({k: v.copy() for k, v in ex.flags.items()})
    verdict = detector.finish()
    if certify:
        # The wide-vs-sequential equivalence claim only holds for
        # race-free programs; certify the generator's discipline.
        assert verdict.race_free, \
            "generator produced a racy program: " + \
            "; ".join(str(c) for c in verdict.conflicts)
    return np.stack(grfs), flags, _surface_bytes(table)


def _run_wide(program, seed):
    table = _make_surfaces(seed)
    ex = WideExecutor(table, num_threads=len(_TIDS))
    ex.seed_scalar(_TID_BASE, np.asarray(_TIDS, dtype=np.int32))
    ex.run(program)
    return ex.grf2d.copy(), ex.flags, _surface_bytes(table)


@settings(max_examples=30, deadline=None)
@given(st.lists(_WIDE_STEP, min_size=1, max_size=10),
       st.integers(0, 2**31 - 1))
def test_wide_matches_sequential_bit_exact(steps, seed):
    program = _build_program(steps)
    with np.errstate(all="ignore"):
        seq_grf, seq_flags, seq_surf = _run_sequential(program, seed)
        wide_grf, wide_flags, wide_surf = _run_wide(program, seed)

    for bti in seq_surf:
        assert np.array_equal(wide_surf[bti], seq_surf[bti]), \
            f"surface {bti} state diverged"
    assert np.array_equal(wide_grf, seq_grf), "GRF state diverged"
    indices = set(wide_flags)
    for t, per_thread in enumerate(seq_flags):
        indices |= set(per_thread)
        for idx in indices:
            seq_f = per_thread.get(idx, np.zeros(32, dtype=bool))
            wide_f = wide_flags[idx][t] if idx in wide_flags else \
                np.zeros(32, dtype=bool)
            assert np.array_equal(wide_f, seq_f), f"flag f{idx} diverged"


def _collision_atomic_program(op_idx, invert, with_dst):
    """Atomics under a data-dependent predicate, colliding across threads."""
    op = _ATOMIC_OPS[op_idx]
    needs_src = op not in ("inc", "dec")
    prog = list(_prologue())
    # flag = (r2 < r3): thread- and lane-dependent predicate
    prog.append(Instruction(Opcode.CMP, 8, None,
                            [_src(2, D), _src(3, D)],
                            cond_mod=CondMod.LT, flag=FlagOperand(0)))
    # force heavy collisions: addresses only span 4 words
    prog.append(Instruction(Opcode.AND, 8, _dst(_AREG, UD),
                            [_src(_AREG, UD), Immediate(3, UD)]))
    msg = MessageDesc(MsgKind.ATOMIC, surface=0, addr_reg=_AREG,
                      payload_reg=_PREG if needs_src else -1,
                      payload_bytes=32 if needs_src else 0,
                      atomic_op=op, elem_dtype=D)
    prog.append(Instruction(
        Opcode.SEND, 8, _dst(_OREG, D) if with_dst else None, [], msg=msg,
        pred=Predicate(FlagOperand(0), invert=invert)))
    return prog


@settings(max_examples=15, deadline=None)
@given(st.integers(0, len(_ATOMIC_OPS) - 1), st.booleans(), st.booleans(),
       st.integers(0, 2**31 - 1))
def test_wide_predicated_atomics_thread_order(op_idx, invert, with_dst,
                                              seed):
    prog = _collision_atomic_program(op_idx, invert, with_dst)
    seq_grf, _, seq_surf = _run_sequential(prog, seed)
    wide_grf, _, wide_surf = _run_wide(prog, seed)
    for bti in seq_surf:
        assert np.array_equal(wide_surf[bti], seq_surf[bti])
    assert np.array_equal(wide_grf, seq_grf)


# -- divergent structured control flow ----------------------------------------
#
# Random *divergent* programs: nested SIMD_IF/ELSE/ENDIF regions and
# DO/WHILE loops with data-dependent (thread- and lane-varying) trip
# counts, optional data-dependent BREAKs, and straight-line work in the
# bodies.  The wide executor must keep bit-identical GRF/flag/surface
# state to sequential per-thread dispatch, because empty-mask regions
# still *step through* their instructions — no thread ever takes a
# different instruction path, only different masks.  The JIT tier has no
# CF support yet and must decline such programs statically rather than
# miscompile them.

from repro.isa.instructions import CF_OPCODES  # noqa: E402
from repro.isa.jit import jit_eligible as _jit_ok  # noqa: E402
from repro.isa.wide import wide_eligible  # noqa: E402

_CF_CREG_BASE = 13               # per-loop-depth trip counters


def _emit_cf_node(node, out, depth):
    """Append the instructions of one CF-tree node to ``out``."""
    tag = node[0]
    if tag == "leaf":
        _, kind, a, b, c = node
        out.extend(_build_step(kind, a, b, c))
        return
    if tag == "if":
        _, a, b, has_else, body, orelse = node
        # lane- and thread-varying condition from the data registers
        out.append(Instruction(Opcode.CMP, 8, None,
                               [_src(_DATA[a % 4], D), _src(_DATA[b % 4], D)],
                               cond_mod=_CONDS[a % len(_CONDS)],
                               flag=FlagOperand(0)))
        out.append(Instruction(Opcode.SIMD_IF, 8, None, [],
                               pred=Predicate(FlagOperand(0),
                                              invert=bool(b % 2))))
        for child in body:
            _emit_cf_node(child, out, depth)
        if has_else:
            out.append(Instruction(Opcode.SIMD_ELSE, 8, None, []))
            for child in orelse:
                _emit_cf_node(child, out, depth)
        out.append(Instruction(Opcode.SIMD_ENDIF, 8, None, []))
        return
    if tag == "loop":
        _, a, use_break, body = node
        creg = _CF_CREG_BASE + depth
        # trip counter: 1..3 per lane plus (tid & 1) — divergent both
        # across lanes and across threads, and strictly decreasing for
        # every lane still in the loop, so termination is structural.
        lanes = tuple(1 + (a + j) % 3 for j in range(8))
        out.append(Instruction(Opcode.AND, 8, _dst(creg, UD),
                               [_bcast(1, UD), Immediate(1, UD)]))
        out.append(Instruction(Opcode.ADD, 8, _dst(creg, D),
                               [_src(creg, D), VectorImmediate(lanes, D)]))
        out.append(Instruction(Opcode.SIMD_DO, 8, None, []))
        for child in body:
            _emit_cf_node(child, out, depth + 1)
        if use_break:
            out.append(Instruction(Opcode.CMP, 8, None,
                                   [_src(_DATA[a % 4], D),
                                    _src(_DATA[(a + 1) % 4], D)],
                                   cond_mod=CondMod.GT, flag=FlagOperand(1)))
            out.append(Instruction(Opcode.SIMD_BREAK, 8, None, [],
                                   pred=Predicate(FlagOperand(1))))
        out.append(Instruction(Opcode.ADD, 8, _dst(creg, D),
                               [_src(creg, D), Immediate(-1, D)]))
        out.append(Instruction(Opcode.CMP, 8, None,
                               [_src(creg, D), Immediate(0, D)],
                               cond_mod=CondMod.GT, flag=FlagOperand(1)))
        out.append(Instruction(Opcode.SIMD_WHILE, 8, None, [],
                               pred=Predicate(FlagOperand(1))))
        return
    raise AssertionError(tag)


# Body work inside divergent regions: no atomics — the race-free
# discipline (private scatter windows, read-only gathers) carries over,
# and colliding atomics already have their own ordered differential
# above.
_CF_LEAF = st.builds(
    lambda kind, a, b, c: ("leaf", kind, a, b, c),
    st.sampled_from(["alu", "shift", "cmp", "sel", "pred_mov",
                     "gather", "scatter"]),
    st.integers(0, 10**6), st.integers(0, 10**6), st.integers(0, 10**6))


def _if_node(children):
    return st.builds(
        lambda a, b, has_else, body, orelse:
            ("if", a, b, has_else, body, orelse),
        st.integers(0, 10**6), st.integers(0, 10**6), st.booleans(),
        st.lists(children, min_size=1, max_size=3),
        st.lists(children, min_size=0, max_size=2))


def _loop_node(children):
    return st.builds(
        lambda a, use_break, body: ("loop", a, use_break, body),
        st.integers(0, 10**6), st.booleans(),
        st.lists(children, min_size=1, max_size=3))


_CF_CHILD = st.recursive(
    _CF_LEAF, lambda ch: st.one_of(_if_node(ch), _loop_node(ch)),
    max_leaves=8)
# every top-level node is a CF construct, so every generated program
# exercises divergence
_CF_TOP = st.one_of(_if_node(_CF_CHILD), _loop_node(_CF_CHILD))


def _build_cf_program(nodes):
    prog = list(_prologue())
    for node in nodes:
        _emit_cf_node(node, prog, 0)
    return prog


def _assert_cf_bit_identical(program, seed):
    assert any(i.opcode in CF_OPCODES for i in program)
    assert wide_eligible(program), "CF program must be wide-admitted"
    assert not _jit_ok(program), "JIT must decline CF programs"
    with np.errstate(all="ignore"):
        seq_grf, seq_flags, seq_surf = _run_sequential(program, seed)
        wide_grf, wide_flags, wide_surf = _run_wide(program, seed)
    for bti in seq_surf:
        assert np.array_equal(wide_surf[bti], seq_surf[bti]), \
            f"surface {bti} state diverged"
    assert np.array_equal(wide_grf, seq_grf), "GRF state diverged"
    indices = set(wide_flags)
    for t, per_thread in enumerate(seq_flags):
        indices |= set(per_thread)
        for idx in indices:
            seq_f = per_thread.get(idx, np.zeros(32, dtype=bool))
            wide_f = wide_flags[idx][t] if idx in wide_flags else \
                np.zeros(32, dtype=bool)
            assert np.array_equal(wide_f, seq_f), f"flag f{idx} diverged"


@settings(max_examples=120, deadline=None)
@given(st.lists(_CF_TOP, min_size=1, max_size=3),
       st.integers(0, 2**31 - 1))
def test_wide_divergent_cf_matches_sequential(nodes, seed):
    _assert_cf_bit_identical(_build_cf_program(nodes), seed)


@settings(max_examples=80, deadline=None)
@given(_loop_node(st.one_of(_CF_LEAF, _if_node(_CF_CHILD),
                            _loop_node(_CF_LEAF))),
       st.booleans(), st.integers(0, 2**31 - 1))
def test_wide_nested_loop_break_matches_sequential(loop, force_break, seed):
    # break-heavy variant: the outer loop always carries a
    # data-dependent BREAK, with nested IFs / inner loops in the body.
    tag, a, use_break, body = loop
    _assert_cf_bit_identical(
        _build_cf_program([(tag, a, use_break or force_break, body)]), seed)


# -- JIT megakernel vs wide vs sequential -------------------------------------
#
# The JIT tier (repro.isa.jit) compiles the whole program to one
# generated Python function; it claims the same architectural
# bit-identity as the wide interpreter.  The three-way differential
# holds all three back ends to one oracle over the same random corpus.

from repro.isa.jit import JitExecutor, JitKernel, jit_eligible  # noqa: E402


def _run_jit(program, seed):
    table = _make_surfaces(seed)
    ex = JitExecutor(table, num_threads=len(_TIDS))
    ex.bind_jit(JitKernel(program))
    ex.seed_scalar(_TID_BASE, np.asarray(_TIDS, dtype=np.int32))
    ex.run(program)
    return ex.grf2d.copy(), ex.flags, _surface_bytes(table)


@settings(max_examples=30, deadline=None)
@given(st.lists(_WIDE_STEP, min_size=1, max_size=10),
       st.integers(0, 2**31 - 1))
def test_jit_matches_wide_and_sequential_bit_exact(steps, seed):
    program = _build_program(steps)
    # every construct the generator can emit must compile, not fall back
    assert jit_eligible(program)
    with np.errstate(all="ignore"):
        seq_grf, seq_flags, seq_surf = _run_sequential(program, seed)
        wide_grf, _, wide_surf = _run_wide(program, seed)
        jit_grf, jit_flags, jit_surf = _run_jit(program, seed)

    for bti in seq_surf:
        assert np.array_equal(jit_surf[bti], seq_surf[bti]), \
            f"surface {bti}: jit diverged from sequential"
        assert np.array_equal(jit_surf[bti], wide_surf[bti]), \
            f"surface {bti}: jit diverged from wide"
    assert np.array_equal(jit_grf, seq_grf), "GRF: jit vs sequential"
    assert np.array_equal(jit_grf, wide_grf), "GRF: jit vs wide"
    indices = set(jit_flags)
    for t, per_thread in enumerate(seq_flags):
        indices |= set(per_thread)
        for idx in indices:
            seq_f = per_thread.get(idx, np.zeros(32, dtype=bool))
            jit_f = jit_flags[idx][t] if idx in jit_flags else \
                np.zeros(32, dtype=bool)
            assert np.array_equal(jit_f, seq_f), f"flag f{idx} diverged"


@settings(max_examples=15, deadline=None)
@given(st.integers(0, len(_ATOMIC_OPS) - 1), st.booleans(), st.booleans(),
       st.integers(0, 2**31 - 1))
def test_jit_predicated_atomics_thread_order(op_idx, invert, with_dst,
                                             seed):
    prog = _collision_atomic_program(op_idx, invert, with_dst)
    seq_grf, _, seq_surf = _run_sequential(prog, seed)
    jit_grf, _, jit_surf = _run_jit(prog, seed)
    for bti in seq_surf:
        assert np.array_equal(jit_surf[bti], seq_surf[bti])
    assert np.array_equal(jit_grf, seq_grf)


# -- seeded-bug corpus --------------------------------------------------------
#
# The detector certification in _run_sequential is only meaningful if
# the checkers actually fire on the bug classes they claim to catch:
# plant one of each (cross-thread race, out-of-bounds clip, read of an
# uninitialized register) and require a 100% catch rate.

import pytest  # noqa: E402

from repro.memory.surfaces import Image2DSurface  # noqa: E402
from repro.sanitize import (  # noqa: E402
    ExecSanitizer, OOBError, UninitTracker, strict,
)


def _verdict_for(program, seed=5):
    table = _make_surfaces(seed)
    detector = RaceDetector()
    detector.attach(table.values())
    ex = FunctionalExecutor(table)
    for tid in _TIDS:
        ex.reset()
        detector.begin_thread(tid)
        ex.grf.write_bytes(_TID_BASE, np.asarray([tid], dtype=np.int32))
        ex.run(program)
    return detector.finish()


class TestSeededBugs:
    def test_planted_write_write_race_is_caught(self):
        # scatter through the *shared* offset register: threads with
        # overlapping _AREG windows write the same bytes of surface 1.
        prog = list(_prologue())
        msg = MessageDesc(MsgKind.SCATTER, surface=1, addr_reg=_AREG,
                          payload_reg=_PREG, payload_bytes=32,
                          elem_dtype=D)
        prog.append(Instruction(Opcode.SEND, 8, None, [], msg=msg))
        verdict = _verdict_for(prog)
        assert not verdict.race_free
        assert any(c.kind == "write-write" for c in verdict.conflicts)
        # and the certified path refuses such a program outright
        with pytest.raises(AssertionError, match="racy"):
            _run_sequential(prog, seed=5)

    def test_planted_read_write_race_is_caught(self):
        # private-window scatters plus a shared-window gather of the
        # *same* surface: later threads read bytes earlier threads wrote.
        prog = list(_prologue())
        prog.append(Instruction(Opcode.SEND, 8, None, [], msg=MessageDesc(
            MsgKind.SCATTER, surface=1, addr_reg=_SREG,
            payload_reg=_PREG, payload_bytes=32, elem_dtype=D)))
        prog.append(Instruction(Opcode.SEND, 8, None, [], msg=MessageDesc(
            MsgKind.GATHER, surface=1, addr_reg=_AREG,
            payload_reg=_PREG, payload_bytes=32, elem_dtype=D)))
        verdict = _verdict_for(prog)
        assert not verdict.race_free
        assert any(c.kind == "read-write" for c in verdict.conflicts)

    def test_race_free_program_is_certified(self):
        # the same shape with disciplined addressing passes cleanly.
        prog = list(_prologue())
        prog.append(Instruction(Opcode.SEND, 8, None, [], msg=MessageDesc(
            MsgKind.SCATTER, surface=1, addr_reg=_SREG,
            payload_reg=_PREG, payload_bytes=32, elem_dtype=D)))
        prog.append(Instruction(Opcode.SEND, 8, None, [], msg=MessageDesc(
            MsgKind.GATHER, surface=0, addr_reg=_AREG,
            payload_reg=_PREG, payload_bytes=32, elem_dtype=D)))
        assert _verdict_for(prog).race_free

    def test_planted_uninit_read_is_caught(self):
        prog = list(_prologue())
        prog.append(Instruction(Opcode.ADD, 8, _dst(_DATA[0], D),
                                [_src(20, D), _src(_DATA[1], D)]))
        table = _make_surfaces(3)
        ex = FunctionalExecutor(table)
        san = ExecSanitizer(uninit=UninitTracker())
        ex.san = san
        ex.reset()
        san.begin_thread(0)
        ex.grf.write_bytes(_TID_BASE, np.asarray([0], dtype=np.int32))
        san.mark_grf_valid(_TID_BASE, 4)
        ex.run(prog)
        assert san.uninit.total > 0
        assert any(f.reg == 20 for f in san.uninit.findings)

    def test_clean_program_has_no_uninit_findings(self):
        prog = _build_program([("alu", 1, 2, 3), ("gather", 0, 0, 0),
                               ("scatter", 0, 0, 0)])
        table = _make_surfaces(3)
        ex = FunctionalExecutor(table)
        san = ExecSanitizer(uninit=UninitTracker())
        ex.san = san
        ex.reset()
        san.begin_thread(0)
        ex.grf.write_bytes(_TID_BASE, np.asarray([0], dtype=np.int32))
        san.mark_grf_valid(_TID_BASE, 4)
        ex.run(prog)
        assert san.uninit.total == 0, san.uninit.findings

    def test_planted_oob_block_read_is_caught(self):
        img = Image2DSurface(np.zeros((8, 16), dtype=np.uint8))
        msg = MessageDesc(MsgKind.MEDIA_BLOCK_READ, surface=0,
                          addr0=Immediate(12, UD), addr1=Immediate(4, UD),
                          payload_reg=_PREG, block_width=8, block_height=8)
        prog = [Instruction(Opcode.SEND, 8, None, [], msg=msg)]
        ex = FunctionalExecutor({0: img})
        ex.reset()
        ex.run(prog)
        # 8x8 block at (12, 4) on a 16x8 image: only 4x4 is in bounds.
        assert img.oob_clipped_lanes == 48
        with strict():
            ex2 = FunctionalExecutor({0: img})
            ex2.reset()
            with pytest.raises(OOBError):
                ex2.run(prog)
