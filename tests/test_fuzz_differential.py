"""Fuzzing the compiler: random region programs, compiled vs numpy.

Random sequences of strided reads, writes, and arithmetic over one
vector are executed three ways — a plain numpy oracle, the eager CM
machine, and the fully compiled Gen binary — and must agree bit-exactly.
This family of tests is what caught the legalization src/dst aliasing
hazard (an op split into chunks must not read registers an earlier
chunk wrote).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import cm
from repro.compiler import compile_kernel
from repro.memory.surfaces import BufferSurface

N = 32


def _legal_select(draw):
    size = draw(st.sampled_from([2, 4, 8, 16]))
    stride = draw(st.integers(1, 3))
    offset = draw(st.integers(0, N - 1 - (size - 1) * stride))
    return size, stride, offset


_STEP = st.builds(
    lambda kind, a, b, c: (kind, a, b, c),
    st.sampled_from(["self_assign", "add_const", "mul_const",
                     "region_add"]),
    st.integers(0, 10**6), st.integers(0, 10**6), st.integers(-9, 9))


def _apply_numpy(steps, data):
    v = data.astype(np.int64)
    for kind, a, b, c in steps:
        size, stride, offset = _select_params(a, b)
        idx = offset + np.arange(size) * stride
        if kind == "self_assign":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                idx2 = offset2 + np.arange(size2) * stride2
                v[idx] = v[idx2].copy()
        elif kind == "add_const":
            v[idx] += c
        elif kind == "mul_const":
            v[idx] *= c
        elif kind == "region_add":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                idx2 = offset2 + np.arange(size2) * stride2
                v[idx] += v[idx2].copy()
    return (v & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)


def _select_params(seed_a, seed_b):
    size = [2, 4, 8, 16][seed_a % 4]
    stride = 1 + (seed_b % 3)
    while (size - 1) * stride >= N:
        size //= 2
    max_off = N - 1 - (size - 1) * stride
    offset = (seed_a // 4) % (max_off + 1)
    return size, stride, offset


def _apply_cm_ops(cmx_or_cm, v, steps):
    for kind, a, b, c in steps:
        size, stride, offset = _select_params(a, b)
        ref = v.select(size, stride, offset)
        if kind == "self_assign":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                ref.assign(v.select(size2, stride2, offset2))
        elif kind == "add_const":
            ref += c
        elif kind == "mul_const":
            ref *= c
        elif kind == "region_add":
            size2, stride2, offset2 = _select_params(b, a)
            if size == size2:
                ref += v.select(size2, stride2, offset2)


@settings(max_examples=40, deadline=None)
@given(st.lists(_STEP, min_size=1, max_size=6), st.integers(0, 2**31 - 1))
def test_compiled_matches_numpy_oracle(steps, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, N).astype(np.int32)
    expect = _apply_numpy(steps, data)

    def body(cmx, buf):
        v = cmx.vector(np.int32, N)
        cmx.read(buf, 0, v)
        _apply_cm_ops(cmx, v, steps)
        cmx.write(buf, 0, v)

    k = compile_kernel(body, "fuzz", [("buf", False)])
    buf = BufferSurface(data.copy())
    k.run([buf])
    assert buf.to_numpy().tolist() == expect.tolist()


@settings(max_examples=40, deadline=None)
@given(st.lists(_STEP, min_size=1, max_size=6), st.integers(0, 2**31 - 1))
def test_eager_matches_numpy_oracle(steps, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, N).astype(np.int32)
    expect = _apply_numpy(steps, data)
    v = cm.vector(cm.int32, N, data)
    _apply_cm_ops(cm, v, steps)
    assert v.to_numpy().tolist() == expect.tolist()
