"""The analytic timing model: bounds, latency hiding, contention."""

import pytest

from repro.isa.dtypes import DF, F, UW
from repro.sim.machine import GEN11_ICL, GEN9_SKL
from repro.sim.timing import time_kernel
from repro.sim.trace import MemKind, ThreadTrace


def trace(machine=GEN11_ICL):
    return ThreadTrace(machine)


class TestMachine:
    def test_derived_quantities(self):
        m = GEN11_ICL
        assert m.num_subslices == 8
        assert m.num_threads == 448
        assert m.native_simd(4) == 16
        assert m.native_simd(8) == 8
        assert m.native_simd(1) == 32

    def test_alu_rates(self):
        m = GEN11_ICL
        assert m.alu_lanes_per_cycle(F) == 8.0
        assert m.alu_lanes_per_cycle(DF) == 2.0
        assert m.alu_lanes_per_cycle(UW) == 16.0
        assert m.alu_lanes_per_cycle(F, is_math=True) == 2.0

    def test_gen9_smaller(self):
        assert GEN9_SKL.num_eus < GEN11_ICL.num_eus


class TestThreadTrace:
    def test_alu_issue_cost(self):
        tr = trace()
        tr.alu(16, F)
        assert tr.inst_count == 1
        assert tr.issue_cycles == 2.0  # 16 lanes / 8 per cycle

    def test_wide_op_splits(self):
        tr = trace()
        tr.alu(144, F)  # the 6x24 select: 9 SIMD16 instructions
        assert tr.inst_count == 9
        assert tr.issue_cycles == 18.0

    def test_math_slower(self):
        tr = trace()
        tr.alu(16, F, is_math=True)
        assert tr.issue_cycles == 8.0

    def test_latency_hidden_by_distance(self):
        m = GEN11_ICL
        tr = trace()
        ev = tr.memory(MemKind.OWORD_READ, nbytes=64, lines=1)
        for _ in range(200):  # plenty of independent work
            tr.alu(16, F)
        tr.consume(ev)
        assert tr.exec_cycles() == pytest.approx(tr.issue_cycles)

    def test_latency_exposed_when_consumed_immediately(self):
        m = GEN11_ICL
        tr = trace()
        ev = tr.memory(MemKind.OWORD_READ, nbytes=64, lines=1)
        tr.consume(ev)
        tr.alu(16, F)
        assert tr.exec_cycles() > m.dataport_latency - 5

    def test_stores_never_stall(self):
        tr = trace()
        tr.memory(MemKind.OWORD_WRITE, nbytes=64, lines=1, is_read=False)
        assert tr.exec_cycles() == tr.issue_cycles

    def test_barrier_cost(self):
        tr = trace()
        tr.barrier()
        assert tr.exec_cycles() == GEN11_ICL.barrier_cycles


class TestKernelBounds:
    def test_compute_bound(self):
        traces = []
        for _ in range(448):
            tr = trace()
            for _ in range(100):
                tr.alu(16, F)
            traces.append(tr)
        t = time_kernel(traces, GEN11_ICL)
        assert t.bound_by == "compute"
        assert t.compute_cycles == pytest.approx(448 * 200 / 64)

    def test_dram_bound_beyond_llc(self):
        m = GEN11_ICL
        traces = []
        lines_needed = int(2 * m.llc_capacity_bytes / 64)
        tr = trace()
        tr.memory(MemKind.OWORD_READ, nbytes=lines_needed * 64,
                  lines=lines_needed, l3_bytes=0)
        traces.append(tr)
        t = time_kernel(traces, m)
        assert t.dram_cycles > 0
        # Half the lines were absorbed by the LLC.
        expect = m.llc_capacity_bytes / m.dram_bytes_per_cycle
        assert t.dram_cycles == pytest.approx(expect, rel=0.01)

    def test_llc_absorbs_small_working_sets(self):
        tr = trace()
        tr.memory(MemKind.OWORD_READ, nbytes=4096, lines=64)
        t = time_kernel([tr], GEN11_ICL)
        assert t.dram_cycles == 0.0

    def test_slm_bound(self):
        traces = []
        for _ in range(64):
            tr = trace()
            tr.memory(MemKind.SLM_ATOMIC, nbytes=64, slm_cycles=1000)
            traces.append(tr)
        t = time_kernel(traces, GEN11_ICL)
        assert t.bound_by == "slm"
        assert t.slm_cycles == 64 * 1000 / 8

    def test_hot_atomic_serial_chain(self):
        m = GEN11_ICL
        traces = []
        for _ in range(8):
            tr = trace()
            tr.memory(MemKind.ATOMIC, nbytes=64, lines=1)
            tr.atomic_global([0] * 1000, surface_id=1)
            traces.append(tr)
        t = time_kernel(traces, m)
        assert t.atomic_cycles == 8000 * m.atomic_cycles_per_op

    def test_sampler_bound(self):
        tr = trace()
        for _ in range(100):
            tr.memory(MemKind.SAMPLER, nbytes=48, lines=1, texels=16)
        t = time_kernel([tr] * 64, GEN11_ICL)
        assert t.sampler_cycles == 64 * 1600 / (8 * 4)

    def test_scatter_messages_cost_more_than_block(self):
        m = GEN11_ICL
        tr_block = trace()
        tr_block.memory(MemKind.OWORD_READ, nbytes=64, lines=1, msgs=1)
        tr_scatter = trace()
        tr_scatter.memory(MemKind.GATHER, nbytes=64, lines=1, msgs=1)
        tb = time_kernel([tr_block], m)
        ts = time_kernel([tr_scatter], m)
        assert ts.dataport_cycles > tb.dataport_cycles

    def test_latency_bound_few_threads(self):
        m = GEN11_ICL
        tr = trace()
        ev = tr.memory(MemKind.SAMPLER, nbytes=4, lines=1, texels=1)
        tr.consume(ev)
        t = time_kernel([tr], m)
        assert t.bound_by == "latency"
        assert t.latency_cycles >= m.sampler_latency

    def test_occupancy_divides_latency(self):
        m = GEN11_ICL
        def mk():
            tr = trace()
            ev = tr.memory(MemKind.OWORD_READ, nbytes=64, lines=1)
            tr.consume(ev)
            return tr
        one = time_kernel([mk()], m)
        many = time_kernel([mk() for _ in range(448 * 4)], m)
        per_thread = one.latency_cycles
        assert many.latency_cycles == pytest.approx(per_thread * 4, rel=0.01)
