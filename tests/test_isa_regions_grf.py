"""Region addressing arithmetic and the GRF model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa.dtypes import D, F, UB, UW
from repro.isa.grf import GRFFile, RegOperand
from repro.isa.regions import (
    Region, RegionDesc, region_element_offsets, region_for_strided,
)


class TestRegion:
    def test_contiguous(self):
        r = Region.contiguous(8)
        assert region_element_offsets(r, 16).tolist() == list(range(16))
        assert r.is_contiguous(16)

    def test_scalar_broadcast(self):
        r = Region.scalar()
        assert region_element_offsets(r, 8).tolist() == [0] * 8

    def test_strided(self):
        r = Region(16, 8, 2)
        offs = region_element_offsets(r, 16)
        assert offs.tolist() == [0, 2, 4, 6, 8, 10, 12, 14,
                                 16, 18, 20, 22, 24, 26, 28, 30]

    def test_row_spanning_fig4(self):
        # The <16;8,1> region from Fig. 4: two runs of 8 elements 16 apart.
        r = Region(16, 8, 1)
        offs = region_element_offsets(r, 16)
        assert offs.tolist() == list(range(8)) + list(range(16, 24))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Region(0, 0, 1)

    def test_str(self):
        assert str(Region(16, 8, 2)) == "<16;8,2>"

    def test_region_for_strided(self):
        r = region_for_strided(16, 2)
        offs = region_element_offsets(r, 16)
        assert offs.tolist() == list(range(0, 32, 2))

    def test_region_desc_byte_offsets(self):
        desc = RegionDesc(4, Region(0, 4, 2), 4)
        assert desc.byte_offsets(4).tolist() == [4, 12, 20, 28]


class TestGRF:
    def test_write_read_bytes(self):
        grf = GRFFile()
        grf.write_bytes(64, np.arange(32, dtype=np.uint8))
        assert grf.read_bytes(64, 32).tolist() == list(range(32))

    def test_bounds_checked(self):
        grf = GRFFile()
        with pytest.raises(IndexError):
            grf.write_bytes(4095, np.zeros(2, dtype=np.uint8))
        with pytest.raises(IndexError):
            grf.read_bytes(4090, 100)

    def test_typed_region_read(self):
        grf = GRFFile()
        grf.write_bytes(32, np.arange(8, dtype=np.float32))
        op = RegOperand(1, 0, F, region=Region(0, 4, 2))
        assert grf.read_region(op, 4).tolist() == [0.0, 2.0, 4.0, 6.0]

    def test_subreg_in_element_units(self):
        grf = GRFFile()
        grf.write_bytes(0, np.arange(16, dtype=np.uint16))
        op = RegOperand(0, 3, UW, region=Region(4, 4, 1))
        assert grf.read_region(op, 4).tolist() == [3, 4, 5, 6]

    def test_strided_destination_write(self):
        grf = GRFFile()
        op = RegOperand(0, 0, D, dst_stride=2)
        grf.write_region(op, np.asarray([1, 2, 3, 4], dtype=np.int32))
        row = grf.dump_reg(0, D)
        assert row[:8].tolist() == [1, 0, 2, 0, 3, 0, 4, 0]

    def test_masked_write(self):
        grf = GRFFile()
        op = RegOperand(0, 0, D)
        grf.write_region(op, np.asarray([1, 2, 3, 4], dtype=np.int32),
                         mask=np.asarray([True, False, True, False]))
        assert grf.dump_reg(0, D)[:4].tolist() == [1, 0, 3, 0]

    def test_cross_register_region(self):
        grf = GRFFile()
        grf.write_bytes(0, np.arange(64, dtype=np.uint8))
        op = RegOperand(0, 0, UB, region=Region(32, 8, 1))
        out = grf.read_region(op, 16)
        assert out.tolist() == list(range(8)) + list(range(32, 40))

    def test_byte_float_aliasing(self):
        grf = GRFFile()
        grf.write_bytes(0, np.asarray([1.0], dtype=np.float32))
        raw = grf.read_region(RegOperand(0, 0, UB, Region(4, 4, 1)), 4)
        assert raw.view(np.float32)[0] == 1.0

    @given(st.integers(1, 16), st.integers(1, 4))
    def test_region_roundtrip(self, width, hstride):
        grf = GRFFile()
        n = width
        data = np.arange(n, dtype=np.int32)
        grf.write_region(RegOperand(0, 0, D, dst_stride=hstride), data)
        r = Region(width * hstride, width, hstride)
        back = grf.read_region(RegOperand(0, 0, D, region=r), n)
        assert back.tolist() == data.tolist()
