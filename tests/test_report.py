"""The Figure 5 report renderer."""

from repro.report import Fig5Row, render_figure5


def test_render_bars_scale():
    rows = [Fig5Row("fast", 10.0, 30.0, "3.0"),
            Fig5Row("slow", 10.0, 15.0, "1.5")]
    text = render_figure5(rows, width=20)
    assert "fast" in text and "slow" in text
    fast_bar = next(l for l in text.splitlines() if l.startswith("fast"))
    slow_bar = next(l for l in text.splitlines() if l.startswith("slow"))
    assert fast_bar.count("#") == 20
    assert slow_bar.count("#") == 10
    assert "3.00x" in fast_bar and "1.50x" in slow_bar


def test_speedup_property():
    row = Fig5Row("w", 2.0, 5.0, "x")
    assert row.speedup == 2.5
