"""The repro.sanitize subsystem: race/OOB/uninit checkers and gating.

Unit tests for each checker plus the load-bearing integration: the
race verdict from a kernel's first (sanitized, sequential) launch
decides whether ``Device.run_compiled(wide=None)`` may take the
grid-vectorized wide path, and ``ServeCluster``/OCL enqueues fold
their findings into sessions and reports.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro.sanitize as sanitize
from repro import cm, ocl
from repro.isa.dtypes import UD
from repro.isa.grf import RegOperand
from repro.memory.surfaces import BufferSurface, Image2DSurface, OOBError
from repro.obs import Observability
from repro.sanitize import (
    ExecSanitizer, RaceDetector, SanitizerReport, UninitTracker,
)
from repro.sim.device import Device

_VEC = 16


# -- shared kernel bodies -----------------------------------------------------

def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


_SAXPY_SIG = [("xbuf", False), ("ybuf", False)]


def _racy_body(cmx, out, tid):
    # every thread reads and rewrites the same 64 bytes at offset 0
    v = cmx.vector(np.float32, _VEC)
    cmx.read(out, 0, v)
    w = cmx.vector(np.float32, _VEC)
    w.assign(v * np.float32(2.0))
    cmx.write(out, 0, w)


_RACY_SIG = [("out", False)]


def _compile_saxpy(dev):
    return dev.compile(_saxpy_body, "saxpy", _SAXPY_SIG, ["tid"])


def _saxpy_surfaces(dev, n_threads=16, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    y = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    return dev.buffer(x.copy()), dev.buffer(y.copy()), x, y


def _launch(dev, kern, surfaces, n_threads=16, **kw):
    return dev.run_compiled(kern, grid=(n_threads,), surfaces=surfaces,
                            scalars=lambda t: {"tid": t[0]}, **kw)


def _trace(fn):
    """Run ``fn`` under a ChromeTraceSink; return (events, fn's result)."""
    from repro import obs as obs_mod
    from repro.obs.tracing import ChromeTraceSink

    sink = ChromeTraceSink()
    with obs_mod.observed(sink=sink, span_metrics=False):
        result = fn()
    return sink.events, result


def _dispatch_paths(events):
    return [e["args"]["path"] for e in events if e["name"] == "dispatch"]


def _timing_equal(a, b):
    return all(getattr(a, f.name) == getattr(b, f.name)
               for f in dataclasses.fields(a))


# -- race detector unit tests -------------------------------------------------

class TestRaceDetector:
    def _surf(self, nbytes=256):
        return BufferSurface(np.zeros(nbytes, dtype=np.uint8))

    def test_disjoint_writes_are_race_free(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        for t in range(4):
            det.begin_thread(t)
            s.write_linear(t * 64, np.full(64, t, dtype=np.uint8))
        assert det.finish().race_free

    def test_overlapping_writes_conflict(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        for t in range(2):
            det.begin_thread(t)
            s.write_linear(32, np.full(16, t, dtype=np.uint8))
        verdict = det.finish()
        assert not verdict.race_free
        (c,) = verdict.conflicts
        assert c.kind == "write-write"
        assert c.byte_range == (32, 48)
        assert {c.thread_a, c.thread_b} == {0, 1}

    def test_read_of_other_threads_write_conflicts(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread("w")
        s.write_linear(0, np.arange(16, dtype=np.uint8))
        det.begin_thread("r")
        s.read_linear(8, 16)
        verdict = det.finish()
        assert not verdict.race_free
        assert verdict.conflicts[0].kind == "read-write"
        assert verdict.conflicts[0].byte_range == (8, 16)

    def test_own_read_after_write_is_fine(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread(0)
        s.write_linear(0, np.arange(64, dtype=np.uint8))
        s.read_linear(0, 64)
        det.begin_thread(1)
        s.read_linear(128, 32)
        assert det.finish().race_free

    def test_atomics_do_not_conflict_with_atomics(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        for t in range(4):
            det.begin_thread(t)
            s.atomic("add", np.zeros(8, dtype=np.int64),
                     np.ones(8, dtype=np.uint32), UD)
        assert det.finish().race_free

    def test_atomic_mixed_with_plain_write_conflicts(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread(0)
        s.atomic("add", np.zeros(4, dtype=np.int64),
                 np.ones(4, dtype=np.uint32), UD)
        det.begin_thread(1)
        s.write_linear(0, np.zeros(4, dtype=np.uint8))
        verdict = det.finish()
        assert not verdict.race_free
        assert verdict.conflicts[0].kind == "atomic-write"

    def test_barrier_separates_epochs(self):
        # write -> barrier -> other thread reads: happens-before, clean
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread(0)
        s.write_linear(0, np.arange(16, dtype=np.uint8))
        det.barrier()
        det.begin_thread(1)
        s.read_linear(0, 16)
        verdict = det.finish()
        assert verdict.race_free
        assert verdict.epochs == 2

    def test_conflict_without_barrier_same_shape(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread(0)
        s.write_linear(0, np.arange(16, dtype=np.uint8))
        det.begin_thread(1)
        s.read_linear(0, 16)
        assert not det.finish().race_free

    def test_scratch_surfaces_are_skipped(self):
        s = self._surf()
        s.obs_label = "scratch"
        det = RaceDetector()
        det.attach([s])
        for t in range(2):
            det.begin_thread(t)
            s.write_linear(0, np.full(8, t, dtype=np.uint8))
        assert det.finish().race_free

    def test_finish_detaches_recorder(self):
        s = self._surf()
        det = RaceDetector()
        det.attach([s])
        det.begin_thread(0)
        det.finish()
        assert s._san_rec is None


# -- uninit tracker unit tests ------------------------------------------------

_R2 = RegOperand(2, 0, UD)  # r2.0:ud — byte 64 of the register file


class TestUninitTracker:
    def test_read_before_write_is_flagged(self):
        un = UninitTracker()
        un.begin_thread(0)
        idx = np.arange(64, 96).reshape(8, 4)
        un.check_plan(idx, None, 3, "add", _R2)
        assert un.total == 8
        f = un.findings[0]
        assert f.reg == 2 and f.inst == 3 and f.opcode == "add"

    def test_write_then_read_is_clean(self):
        un = UninitTracker()
        un.begin_thread(0)
        un.mark_range(64, 32)
        un.check_plan(np.arange(64, 96).reshape(8, 4), None, 0, "add", _R2)
        assert un.total == 0

    def test_masked_lanes_are_not_checked(self):
        un = UninitTracker()
        un.begin_thread(0)
        idx = np.arange(64, 96).reshape(8, 4)  # 8 dword lanes
        mask = np.zeros(8, dtype=bool)
        un.check_plan(idx, mask, 0, "add", _R2)
        assert un.total == 0
        mask[2] = True
        un.check_plan(idx, mask, 1, "add", _R2)
        assert un.total == 1
        assert un.findings[0].lanes == (2,)

    def test_report_once_then_marked_valid(self):
        # a single bad register read reports once, not per use
        un = UninitTracker()
        un.begin_thread(0)
        idx = np.arange(64, 96).reshape(8, 4)
        un.check_plan(idx, None, 0, "add", _R2)
        un.check_plan(idx, None, 1, "mul", _R2)
        assert un.total == 8

    def test_begin_thread_resets_validity(self):
        un = UninitTracker()
        un.begin_thread(0)
        un.mark_range(64, 32)
        un.begin_thread(1)
        un.check_plan(np.arange(64, 96).reshape(8, 4), None, 0, "add", _R2)
        assert un.total == 8
        assert un.findings[0].thread == 1


# -- OOB sanitizer ------------------------------------------------------------

class TestOOB:
    def _img(self):
        return Image2DSurface(np.zeros((8, 16), dtype=np.uint8))

    def test_block_read_clip_is_counted(self):
        img = self._img()
        img.read_block(12, 4, 8, 8)
        assert img.oob_clipped_lanes == 48
        assert img.oob_events[0][0] == "read_block"

    def test_in_bounds_access_counts_nothing(self):
        img = self._img()
        img.read_block(0, 0, 16, 8)
        img.write_block(8, 4, 8, 4, np.zeros(32, dtype=np.uint8))
        assert img.oob_clipped_lanes == 0

    def test_strict_mode_raises_with_diagnostic(self):
        img = self._img()
        img.obs_label = "acts"
        with sanitize.strict():
            with pytest.raises(OOBError, match="acts"):
                img.read_block(12, 4, 8, 8)
        # strict flag restored on exit: the same access clamps again
        img.read_block(12, 4, 8, 8)

    def test_pixel_reads_count_clipped_lanes(self):
        img = self._img()
        xs = np.array([0, 5, 20, -1])
        ys = np.array([0, 2, 1, 9])
        img.read_pixels(xs, ys)
        assert img.oob_clipped_lanes == 2

    def test_collect_reports_per_label(self):
        img = self._img()
        img.obs_label = "imgX"
        img.read_block(12, 4, 8, 8)
        assert sanitize.collect_oob([img]) == {"imgX": 48}
        sanitize.oob.reset([img])
        assert img.oob_clipped_lanes == 0 and img.oob_events == []


# -- dispatch gating: the load-bearing verdict --------------------------------

class TestWideGating:
    def test_first_launch_sequential_then_wide(self):
        def go():
            dev = Device()
            xb, yb, _, _ = _saxpy_surfaces(dev)
            kern = _compile_saxpy(dev)
            _launch(dev, kern, [xb, yb], validate="first")
            _launch(dev, kern, [xb, yb], validate="first")
            return dev
        events, dev = _trace(go)
        # second launch takes the top auto tier (JIT) once certified
        assert _dispatch_paths(events) == ["compiled", "jit"]
        assert len(dev.sanitizer_results) == 1
        assert dev.sanitizer_results[0].verdict.race_free
        assert dev.sanitizer_results[0].clean

    def test_racy_kernel_never_takes_wide(self):
        def go():
            dev = Device()
            out = dev.buffer(np.zeros(_VEC, dtype=np.float32))
            kern = dev.compile(_racy_body, "racy", _RACY_SIG, ["tid"])
            for _ in range(3):
                _launch(dev, kern, [out], n_threads=8, validate="first")
            return dev
        events, dev = _trace(go)
        assert _dispatch_paths(events) == ["compiled"] * 3
        v = dev.sanitizer_results[0].verdict
        assert not v.race_free
        kinds = {c.kind for c in v.conflicts}
        assert kinds & {"write-write", "read-write"}

    def test_certified_wide_launch_has_timing_parity(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        run_sanitized = _launch(dev, kern, [xb, yb], validate="first")
        run_wide = _launch(dev, kern, [xb, yb], validate="first")
        assert _timing_equal(run_sanitized.timing, run_wide.timing)

    def test_validate_always_sanitizes_every_launch(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        _launch(dev, kern, [xb, yb], validate="always")
        _launch(dev, kern, [xb, yb], validate="always")
        assert len(dev.sanitizer_results) == 2
        assert all(r.clean for r in dev.sanitizer_results)

    def test_validate_off_goes_straight_wide(self):
        def go():
            dev = Device()
            xb, yb, _, _ = _saxpy_surfaces(dev)
            kern = _compile_saxpy(dev)
            _launch(dev, kern, [xb, yb], validate="off")
            return dev
        events, dev = _trace(go)
        assert _dispatch_paths(events) == ["jit"]
        assert dev.sanitizer_results == []

    def test_wide_true_bypasses_validation(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        _launch(dev, kern, [xb, yb], wide=True, validate="first")
        assert dev.sanitizer_results == []

    def test_sanitized_launch_preserves_results(self):
        dev = Device()
        xb, yb, x, y = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        _launch(dev, kern, [xb, yb], validate="always")
        assert np.allclose(yb.to_numpy().view(np.float32),
                           2.0 * x + y, atol=1e-6)

    def test_invalid_validate_mode_rejected(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        with pytest.raises(ValueError, match="validate"):
            _launch(dev, kern, [xb, yb], validate="sometimes")

    def test_wide_executor_refuses_sanitizer_hooks(self):
        from repro.isa.executor import ExecutionError
        from repro.isa.wide import WideExecutor

        ex = WideExecutor({}, num_threads=2)
        ex.san = ExecSanitizer(uninit=UninitTracker())
        with pytest.raises(ExecutionError, match="sanitizer"):
            ex.run([])

    def test_reset_clears_results_and_clear_cache_drops_verdicts(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        _launch(dev, kern, [xb, yb], validate="first")
        assert dev.sanitizer_results and dev._race_verdicts
        dev.reset()
        assert dev.sanitizer_results == [] and dev.oob_lanes == {}
        assert dev._race_verdicts  # verdicts survive like the kernel cache
        dev.reset(clear_cache=True)
        assert not dev._race_verdicts


# -- OOB metrics through the device -------------------------------------------

def _clipped_read_body(cmx, img, tid):
    # x=12 with an 8-byte-wide block on a 16-byte-wide surface: the
    # right 4 columns of every row are edge-clamped.
    m = cmx.matrix(np.uint8, 4, 8)
    cmx.read(img, 12, tid * 4, m)
    cmx.write(img, 0, tid * 4, m)


class TestDeviceOOBMetrics:
    def _setup(self, obs=None):
        dev = Device(obs=obs) if obs is not None else Device()
        img = dev.image2d(np.zeros((8, 16), dtype=np.uint8))
        kern = dev.compile(_clipped_read_body, "clipread",
                           [("img", True)], ["tid"])
        return dev, img, kern

    def test_oob_lanes_land_in_device_and_registry(self):
        obs = Observability(enabled=True)
        dev, img, kern = self._setup(obs)
        _launch(dev, kern, [img], n_threads=2, validate="off")
        label = img.obs_label
        assert dev.oob_lanes.get(label, 0) > 0
        metric = obs.registry.get("sanitize_oob_lanes", surface=label)
        assert metric.value == dev.oob_lanes[label]
        assert "oob clipped lanes" in dev.report()

    def test_collection_is_delta_based_not_double_counted(self):
        dev, img, kern = self._setup()
        _launch(dev, kern, [img], n_threads=2, validate="off")
        first = dict(dev.oob_lanes)
        assert first[img.obs_label] > 0
        _launch(dev, kern, [img], n_threads=2, validate="off")
        assert dev.oob_lanes[img.obs_label] == 2 * first[img.obs_label]

    def test_sanitized_launch_reports_oob_in_result(self):
        dev, img, kern = self._setup()
        _launch(dev, kern, [img], n_threads=2, validate="always")
        (result,) = dev.sanitizer_results
        assert result.oob_lanes.get(img.obs_label, 0) > 0


# -- sessions: eager CM and OCL paths -----------------------------------------

class TestSession:
    def test_ocl_slm_race_without_barrier_is_caught(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.uint32))
        dst = dev.buffer(np.zeros(32, dtype=np.uint32))

        def kernel(a, b, slm):
            gid = ocl.get_global_id(0)
            lid = ocl.get_local_id(0)
            v = ocl.load(a, gid, dtype=np.uint32)
            ocl.slm_store(slm, lid, v)
            n = ocl.get_local_size(0)
            r = ocl.slm_load(slm, (n - 1) - lid, dtype=np.uint32)
            ocl.store(b, gid, r)

        with sanitize.session() as sess:
            ocl.enqueue(dev, kernel, 32, 32, args=(src, dst), slm_bytes=128)
        (result,) = sess.report.results
        assert not result.verdict.race_free
        assert any(c.surface == "slm" for c in result.verdict.conflicts)

    def test_ocl_slm_exchange_with_barrier_is_clean(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.uint32))
        dst = dev.buffer(np.zeros(32, dtype=np.uint32))

        def kernel(a, b, slm):
            gid = ocl.get_global_id(0)
            lid = ocl.get_local_id(0)
            v = ocl.load(a, gid, dtype=np.uint32)
            ocl.slm_store(slm, lid, v)
            yield ocl.barrier()
            n = ocl.get_local_size(0)
            r = ocl.slm_load(slm, (n - 1) - lid, dtype=np.uint32)
            ocl.store(b, gid, r)

        with sanitize.session() as sess:
            ocl.enqueue(dev, kernel, 32, 32, args=(src, dst), slm_bytes=128)
        (result,) = sess.report.results
        assert result.verdict.race_free
        assert dst.to_numpy().tolist() == list(range(31, -1, -1))

    def test_eager_cm_launch_is_recorded(self):
        dev = Device()
        buf = dev.buffer(np.zeros(8 * _VEC, dtype=np.float32))

        @cm.cm_kernel
        def kern():
            tid = cm.thread_x()
            v = cm.vector(cm.float32, _VEC)
            cm.read(buf, tid * _VEC * 4, v)
            cm.write(buf, tid * _VEC * 4, v)

        with sanitize.session() as sess:
            dev.run_cm(kern, grid=(8,))
        (result,) = sess.report.results
        assert result.verdict.race_free
        assert result.verdict.threads == 8

    def test_eager_cm_race_is_caught(self):
        dev = Device()
        buf = dev.buffer(np.zeros(_VEC, dtype=np.float32))

        @cm.cm_kernel
        def kern():
            v = cm.vector(cm.float32, _VEC, 1.0)
            cm.write(buf, 0, v)  # all threads write the same block

        with sanitize.session() as sess:
            dev.run_cm(kern, grid=(4,))
        (result,) = sess.report.results
        assert not result.verdict.race_free

    def test_compiled_launch_under_session_is_sanitized(self):
        dev = Device()
        xb, yb, _, _ = _saxpy_surfaces(dev)
        kern = _compile_saxpy(dev)
        with sanitize.session() as sess:
            _launch(dev, kern, [xb, yb])  # validate=None -> "always"
        assert len(sess.report.results) == 1
        assert sess.report.clean

    def test_session_restores_previous(self):
        assert sanitize.current_session() is None
        with sanitize.session():
            assert sanitize.current_session() is not None
        assert sanitize.current_session() is None


# -- report aggregation and publication ---------------------------------------

def _racy_device():
    dev = Device()
    out = dev.buffer(np.zeros(_VEC, dtype=np.float32))
    kern = dev.compile(_racy_body, "racy", _RACY_SIG, ["tid"])
    _launch(dev, kern, [out], n_threads=4, validate="always")
    return dev


class TestReport:
    def test_json_roundtrip(self):
        dev = _racy_device()
        report = SanitizerReport(results=list(dev.sanitizer_results))
        blob = json.loads(report.to_json())
        assert blob["kernels"] == 1 and blob["racy"] == 1
        assert not blob["clean"]
        assert blob["results"][0]["race"]["conflicts"]

    def test_publish_increments_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        dev = _racy_device()
        reg = MetricsRegistry()
        SanitizerReport(results=list(dev.sanitizer_results)).publish(reg)
        assert reg.get("sanitize_race_conflicts", kernel="racy").value >= 1

    def test_device_report_mentions_unclean_launches(self):
        dev = _racy_device()
        assert "RACY" in dev.report()

    def test_sanitized_launch_publishes_conflict_metric(self):
        obs = Observability(enabled=True)
        dev = Device(obs=obs)
        out = dev.buffer(np.zeros(_VEC, dtype=np.float32))
        kern = dev.compile(_racy_body, "racy", _RACY_SIG, ["tid"])
        _launch(dev, kern, [out], n_threads=4, validate="always")
        metric = obs.registry.get("sanitize_race_conflicts", kernel="racy")
        assert metric.value >= 1


# -- serving layer ------------------------------------------------------------

class TestServeValidate:
    def test_cluster_validate_mode_is_checked(self):
        from repro.serve.cluster import ServeCluster

        with pytest.raises(ValueError, match="validate"):
            ServeCluster(num_devices=1, validate="nope")

    def test_cluster_first_mode_certifies_then_reuses(self):
        from repro.serve.cluster import ServeCluster

        with ServeCluster(num_devices=1, batching=False,
                          validate="first") as cluster:
            for _ in range(3):
                cluster.submit("saxpy", {"n": 256, "seed": 3})
            assert cluster.drain(timeout=60.0)
        dev = cluster.workers[0].device
        assert len(dev.sanitizer_results) == 1
        assert dev.sanitizer_results[0].verdict.race_free
        assert all(r.status.value == "done" for r in cluster.completed)

    def test_loadgen_sanitize_flag_adds_section(self):
        from repro.serve.loadgen import run_loadgen

        report = run_loadgen(devices=1, requests=8, mix="compiled",
                             mode="closed", concurrency=2, sanitize=True)
        assert report["sanitize"]["sanitized_launches"] >= 1
        assert report["sanitize"]["clean"]
        assert report["sanitize"]["racy_kernels"] == []


# -- CLI ----------------------------------------------------------------------

class TestCLI:
    def test_cli_runs_subset_and_writes_json(self, tmp_path):
        from repro.sanitize.__main__ import main

        out = tmp_path / "report.json"
        rc = main(["--workloads", "serve.saxpy,table1.stencil2d.cm",
                   "--json", str(out), "--quiet"])
        assert rc == 0
        blob = json.loads(out.read_text())
        assert blob["clean"] and blob["kernels"] == 2

    def test_cli_list(self, capsys):
        from repro.sanitize.__main__ import main

        assert main(["--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "table1.systolic.cm" in names
        assert "serve.sgemm" in names

    def test_cli_rejects_unknown_workload(self):
        from repro.sanitize.__main__ import main

        with pytest.raises(KeyError, match="unknown workload"):
            main(["--workloads", "no.such.kernel", "--quiet"])

    def test_default_validate_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "always")
        assert sanitize.default_validate() == "always"
        monkeypatch.setenv("REPRO_SANITIZE", "bogus")
        assert sanitize.default_validate() == "first"
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize.default_validate() == "first"
