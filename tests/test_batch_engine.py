"""Batch-execution engine: kernel cache, streaming timing, run_compiled.

Also holds the regression tests for the three bug fixes that shipped with
the engine: logical-vs-arithmetic right shift, multi-line cache-line
coalescing, and predicated atomic return writeback.
"""

import numpy as np

from repro import cm
from repro.compiler import compile_kernel
from repro.compiler.cache import KernelCache, compile_kernel_cached
from repro.isa.dtypes import D, F, UD, W
from repro.isa.executor import FunctionalExecutor
from repro.isa.grf import RegOperand
from repro.isa.instructions import (
    FlagOperand, Immediate, Instruction, MessageDesc, MsgKind, Opcode,
    Predicate,
)
from repro.isa.regions import Region
from repro.memory.surfaces import BufferSurface
from repro.memory.traffic import spanned_lines, unique_cache_lines
from repro.sim import Device, MemKind, ThreadTrace, TimingAccumulator
from repro.sim.machine import GEN11_ICL
from repro.sim.timing import time_kernel
from repro.workloads import gemm


def _packed(n):
    w = min(n, 8)
    return Region(w, w, 1)


def _load_reg(ex, reg, values, dtype):
    ex.grf.write_bytes(reg * 32, np.asarray(values, dtype=dtype.np_dtype))


def _copy_body(cmx, src, dst):
    v = cmx.vector(np.uint32, 16)
    cmx.read(src, 0, v)
    cmx.write(dst, 0, v)


def _scale_body(cmx, src, dst):
    v = cmx.vector(np.uint32, 16)
    cmx.read(src, 0, v)
    w = cmx.vector(np.uint32, 16)
    w.assign(v + v)
    cmx.write(dst, 0, w)


_COPY_SIG = [("src", False), ("dst", False)]


class TestKernelCache:
    def test_hit_after_miss(self):
        cache = KernelCache()
        k1, hit1 = cache.lookup(_copy_body, "copy", _COPY_SIG)
        k2, hit2 = cache.lookup(_copy_body, "copy", _COPY_SIG)
        assert (hit1, hit2) == (False, True)
        assert k1 is k2
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_bodies_distinct_entries(self):
        cache = KernelCache()
        k1 = cache.get_or_compile(_copy_body, "k", _COPY_SIG)
        k2 = cache.get_or_compile(_scale_body, "k", _COPY_SIG)
        assert k1 is not k2
        assert len(cache) == 2 and cache.stats.misses == 2

    def test_signature_is_part_of_the_key(self):
        cache = KernelCache()
        cache.get_or_compile(_copy_body, "copy", _COPY_SIG)
        cache.get_or_compile(_copy_body, "copy", _COPY_SIG, optimize=False)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_explicit_invalidation(self):
        cache = KernelCache()
        cache.get_or_compile(_copy_body, "copy", _COPY_SIG)
        assert cache.invalidate(name="copy") == 1
        assert cache.stats.invalidations == 1
        _, hit = cache.lookup(_copy_body, "copy", _COPY_SIG)
        assert not hit

    def test_lru_eviction(self):
        cache = KernelCache(maxsize=1)
        cache.get_or_compile(_copy_body, "a", _COPY_SIG)
        cache.get_or_compile(_scale_body, "b", _COPY_SIG)
        assert len(cache) == 1 and cache.stats.evictions == 1
        # "a" was evicted: compiling it again misses.
        _, hit = cache.lookup(_copy_body, "a", _COPY_SIG)
        assert not hit

    def test_compile_kernel_cached_helper(self):
        cache = KernelCache()
        k1 = compile_kernel_cached(_copy_body, "copy", _COPY_SIG, cache=cache)
        k2 = compile_kernel_cached(_copy_body, "copy", _COPY_SIG, cache=cache)
        assert k1 is k2 and cache.stats.hits == 1

    def test_device_compile_counts_in_profile(self):
        dev = Device()
        k1 = dev.compile(_copy_body, "copy", _COPY_SIG)
        k2 = dev.compile(_copy_body, "copy", _COPY_SIG)
        assert k1 is k2
        assert dev.profile.compile_cache_misses == 1
        assert dev.profile.compile_cache_hits == 1
        assert "kernel cache: 1 hits, 1 misses" in dev.report()


def _synthetic_traces(machine, count=6):
    traces = []
    for i in range(count):
        tr = ThreadTrace(machine)
        tr.alu(16, F)
        tr.scalar_op(3)
        ev = tr.memory(MemKind.OWORD_READ, nbytes=128, lines=2, dram_lines=1,
                       l3_bytes=128)
        tr.alu(8 + i, D)
        tr.consume(ev)
        tr.memory(MemKind.SCATTER, nbytes=64, lines=3, dram_lines=2,
                  is_read=False)
        tr.memory(MemKind.SLM_READ, nbytes=64, slm_cycles=4)
        tr.memory(MemKind.SAMPLER, nbytes=64, lines=1, texels=16)
        tr.atomic_global([1, 2, 2 + i], surface_id=7)
        tr.barrier()
        tr.note_grf(1024 + i * 32)
        traces.append(tr)
    return traces


_TIMING_FIELDS = [
    "num_threads", "total_instructions", "compute_cycles", "dram_cycles",
    "l3_cycles", "dataport_cycles", "sampler_cycles", "slm_cycles",
    "atomic_cycles", "latency_cycles", "dram_bytes", "global_read_bytes",
    "global_write_bytes", "slm_bytes", "texels", "barriers", "messages",
    "max_grf_bytes",
]


class TestTimingAccumulator:
    def test_bit_identical_to_time_kernel(self):
        traces = _synthetic_traces(GEN11_ICL)
        batch = time_kernel(traces, GEN11_ICL)
        acc = TimingAccumulator(GEN11_ICL)
        for tr in traces:
            acc.add(tr)
        streamed = acc.finalize()
        for fieldname in _TIMING_FIELDS:
            assert getattr(streamed, fieldname) == getattr(batch, fieldname), \
                fieldname
        assert streamed.bounds == batch.bounds
        assert streamed.cycles == batch.cycles
        assert streamed.bound_by == batch.bound_by

    def test_finalize_is_repeatable_and_incremental(self):
        traces = _synthetic_traces(GEN11_ICL)
        acc = TimingAccumulator(GEN11_ICL)
        acc.extend(traces[:3])
        partial = acc.finalize()
        assert partial.num_threads == 3
        assert partial.cycles == time_kernel(traces[:3], GEN11_ICL).cycles
        acc.extend(traces[3:])
        assert acc.finalize().cycles == time_kernel(traces, GEN11_ICL).cycles

    def test_empty_accumulator(self):
        t = TimingAccumulator(GEN11_ICL).finalize()
        assert t.num_threads == 0 and t.cycles == 0.0


# -- run_compiled vs eager run_cm ---------------------------------------------

_BM, _BN, _K = 8, 16, 8


def _gemm_body(cmx, abuf, bbuf, cbuf, tx, ty):
    row0 = ty * _BM
    col0 = tx * _BN
    atile = cmx.matrix(np.float32, _BM, _K)
    cmx.read(abuf, 0, row0, atile)
    btile = cmx.matrix(np.float32, _K, _BN)
    cmx.read(bbuf, col0 * 4, 0, btile)
    acc = cmx.matrix(np.float32, _BM, _BN, np.zeros(_BM * _BN, np.float32))
    for kk in range(_K):
        a_b = atile.replicate(_BM, _K, _BN, 0, kk)
        b_b = btile.replicate(_BM, 0, _BN, 1, kk * _BN)
        acc += a_b * b_b
    ctile = cmx.matrix(np.float32, _BM, _BN)
    cmx.read(cbuf, col0 * 4, row0, ctile)
    out = cmx.matrix(np.float32, _BM, _BN)
    out.assign(acc + ctile * np.float32(0.0))
    cmx.write(cbuf, col0 * 4, row0, out)


def _reduce_sum(vec, n):
    w = n // 2
    while w >= 1:
        lo = vec.select(w, 1, 0)
        lo += vec.select(w, 1, w)
        w //= 2


_NB, _CHUNK, _THREADS = 8, 64, 4


@cm.cm_kernel
def _hist_eager(src, out):
    t = cm.thread_x()
    chunk = cm.vector(cm.uchar, _CHUNK)
    cm.read(src, t * _CHUNK, chunk)
    counts = cm.vector(cm.uint, _NB, 0)
    ones = cm.vector(cm.uint, _CHUNK, 1)
    for b in range(_NB):
        binvec = cm.vector(cm.uint, _CHUNK, 0)
        binvec.merge(ones, chunk == b)
        _reduce_sum(binvec, _CHUNK)
        counts.select(1, 1, b).assign(binvec.select(1, 1, 0))
    offs = cm.vector(cm.uint, _NB, np.arange(_NB))
    cm.write_scattered(out, t * _NB, offs, counts)


def _hist_body(cmx, src, out, t):
    chunk = cmx.vector(np.uint8, _CHUNK)
    cmx.read(src, t * _CHUNK, chunk)
    counts = cmx.vector(np.uint32, _NB, np.zeros(_NB, np.uint32))
    ones = cmx.vector(np.uint32, _CHUNK, np.ones(_CHUNK, np.uint32))
    for b in range(_NB):
        binvec = cmx.vector(np.uint32, _CHUNK, np.zeros(_CHUNK, np.uint32))
        binvec.merge(ones, chunk == b)
        _reduce_sum(binvec, _CHUNK)
        counts.select(1, 1, b).assign(binvec.select(1, 1, 0))
    cmx.write_scattered(out, t * _NB, np.arange(_NB), counts)


class TestRunCompiledVsEager:
    def _run_gemm_pair(self, chunk_threads=64, wide=None):
        m, n, k = 16, 32, _K
        a, b, c = gemm.make_inputs(m, n, k, seed=5)
        dev_e = Device()
        out_e = gemm._run_cm_typed(dev_e, a, b, c, 1.0, 0.0, cm.float32,
                                   _BM, _BN, "gemm_small")
        dev_c = Device()
        kern = dev_c.compile(_gemm_body, "gemm_small_c",
                             [("abuf", True), ("bbuf", True), ("cbuf", True)],
                             ["tx", "ty"])
        abuf = dev_c.image2d(a.copy(), bytes_per_pixel=4)
        bbuf = dev_c.image2d(b.copy(), bytes_per_pixel=4)
        cbuf = dev_c.image2d(c.copy(), bytes_per_pixel=4)
        run = dev_c.run_compiled(
            kern, (n // _BN, m // _BM), [abuf, bbuf, cbuf],
            scalars=lambda tid: {"tx": tid[0], "ty": tid[1]},
            chunk_threads=chunk_threads, wide=wide)
        return dev_e, out_e, dev_c, cbuf.to_numpy().copy(), run, (a, b, c)

    def test_gemm_outputs_identical_and_same_bound(self):
        dev_e, out_e, dev_c, out_c, run, (a, b, c) = self._run_gemm_pair()
        assert np.allclose(out_e, gemm.reference(a, b, c, 1.0, 0.0),
                           atol=1e-4)
        assert np.array_equal(out_e, out_c)
        eager = dev_e.runs[0].timing
        assert run.timing.bound_by == eager.bound_by
        assert run.timing.num_threads == eager.num_threads

    def test_gemm_chunked_dispatch_matches_unchunked(self):
        # chunk_threads / peak_live_traces are sequential-path internals;
        # pin the scalar path (the wide path has its own chunking test in
        # test_wide_dispatch.py).
        _, _, dev1, out1, run1, _ = self._run_gemm_pair(chunk_threads=64,
                                                        wide=False)
        _, _, dev2, out2, run2, _ = self._run_gemm_pair(chunk_threads=1,
                                                        wide=False)
        assert np.array_equal(out1, out2)
        assert run1.timing.cycles == run2.timing.cycles
        assert dev2.profile.chunks_dispatched == 4
        assert dev2.profile.peak_live_traces == 1
        assert dev1.profile.peak_live_traces == 4

    def test_histogram_outputs_identical_and_same_bound(self):
        rng = np.random.default_rng(11)
        pixels = rng.integers(0, _NB, size=_CHUNK * _THREADS, dtype=np.uint8)

        dev_e = Device()
        src_e = dev_e.buffer(pixels.copy())
        out_e = dev_e.buffer(np.zeros(_NB * _THREADS, dtype=np.uint32))
        dev_e.run_cm(_hist_eager, grid=(_THREADS,), args=(src_e, out_e),
                     name="hist")
        parts_e = out_e.to_numpy().reshape(_THREADS, _NB).copy()

        dev_c = Device()
        kern = dev_c.compile(_hist_body, "hist_c",
                             [("src", False), ("out", False)], ["t"])
        src_c = dev_c.buffer(pixels.copy())
        out_c = dev_c.buffer(np.zeros(_NB * _THREADS, dtype=np.uint32))
        run = dev_c.run_compiled(kern, (_THREADS,), [src_c, out_c],
                                 scalars=lambda tid: {"t": tid[0]})
        parts_c = out_c.to_numpy().reshape(_THREADS, _NB).copy()

        expect = np.bincount(pixels, minlength=_NB).astype(np.uint32)
        assert np.array_equal(parts_e.sum(axis=0, dtype=np.uint32), expect)
        assert np.array_equal(parts_e, parts_c)
        assert run.timing.bound_by == dev_e.runs[0].timing.bound_by

    def test_functional_only_launch(self):
        m, n, k = 16, 32, _K
        a, b, c = gemm.make_inputs(m, n, k, seed=5)
        dev = Device()
        kern = dev.compile(_gemm_body, "gemm_small_c",
                           [("abuf", True), ("bbuf", True), ("cbuf", True)],
                           ["tx", "ty"])
        abuf = dev.image2d(a.copy(), bytes_per_pixel=4)
        bbuf = dev.image2d(b.copy(), bytes_per_pixel=4)
        cbuf = dev.image2d(c.copy(), bytes_per_pixel=4)
        result = dev.run_compiled(
            kern, (n // _BN, m // _BM), [abuf, bbuf, cbuf],
            scalars=lambda tid: {"tx": tid[0], "ty": tid[1]},
            collect_timing=False)
        assert result is None and not dev.runs
        assert np.allclose(cbuf.to_numpy(), gemm.reference(a, b, c, 1.0, 0.0),
                           atol=1e-4)


# -- bugfix regressions --------------------------------------------------------


class TestShiftSemantics:
    def test_shr_is_logical_on_negative_dwords(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [-8, -1, 16, -(2 ** 31)], D)
        ex.execute(Instruction(
            Opcode.SHR, 4, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, _packed(4)), Immediate(2, D)]))
        # Negative values shift in zero bits, not copies of the sign bit.
        assert ex.grf.dump_reg(2, D)[:4].tolist() == [
            (0xFFFFFFF8) >> 2, 0xFFFFFFFF >> 2, 4, 0x80000000 >> 2]

    def test_shr_is_logical_on_negative_words(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [-4, -32768, 6, -1], W)
        ex.execute(Instruction(
            Opcode.SHR, 4, RegOperand(2, 0, W),
            [RegOperand(1, 0, W, _packed(4)), Immediate(1, W)]))
        assert ex.grf.dump_reg(2, W)[:4].tolist() == [
            0xFFFC >> 1, 0x8000 >> 1, 3, 0xFFFF >> 1]

    def test_asr_replicates_sign_on_unsigned_operands(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [0x80000000, 4], UD)
        ex.execute(Instruction(
            Opcode.ASR, 2, RegOperand(2, 0, UD),
            [RegOperand(1, 0, UD, Region(2, 2, 1)), Immediate(1, UD)]))
        assert ex.grf.dump_reg(2, UD)[:2].tolist() == [0xC0000000, 2]

    def test_asr_on_signed_matches_python(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [-8, -1, 16, 7], D)
        ex.execute(Instruction(
            Opcode.ASR, 4, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, _packed(4)), Immediate(2, D)]))
        assert ex.grf.dump_reg(2, D)[:4].tolist() == [-2, -1, 4, 1]

    def test_compiled_signed_shift_is_arithmetic(self):
        """The frontend lowers a signed ``>>`` to asr (C semantics)."""
        def body(cmx, src, dst):
            v = cmx.vector(np.int32, 8)
            cmx.read(src, 0, v)
            w = cmx.vector(np.int32, 8)
            w.assign(v >> 1)
            cmx.write(dst, 0, w)

        data = np.array([-8, -1, -2 ** 31, -3, 0, 5, 100, -100],
                        dtype=np.int32)
        src = BufferSurface(data.copy())
        dst = BufferSurface(np.zeros(8, dtype=np.int32))
        k = compile_kernel(body, "sshift", _COPY_SIG)
        k.run([src, dst])
        assert dst.to_numpy().tolist() == (data >> 1).tolist()

    def test_compiled_unsigned_shift_is_logical(self):
        def body(cmx, src, dst):
            v = cmx.vector(np.uint32, 8)
            cmx.read(src, 0, v)
            w = cmx.vector(np.uint32, 8)
            w.assign(v >> 1)
            cmx.write(dst, 0, w)

        data = np.array([0x80000000, 0xFFFFFFFF, 8, 1, 0, 3, 2 ** 31 + 1, 6],
                        dtype=np.uint32)
        src = BufferSurface(data.copy())
        dst = BufferSurface(np.zeros(8, dtype=np.uint32))
        k = compile_kernel(body, "ushift", _COPY_SIG)
        k.run([src, dst])
        assert dst.to_numpy().tolist() == (data >> 1).tolist()


class TestCacheLineCoalescing:
    def test_single_access_spanning_three_lines(self):
        # Bytes [10, 160): lines 0, 1, and 2 — the middle line must be
        # charged too, not just the first and last.
        assert unique_cache_lines(np.array([10]), access_bytes=150) == 3

    def test_spanned_lines_enumerates_interior_lines(self):
        lines = spanned_lines(np.array([0]), access_bytes=256, line_bytes=64)
        assert sorted(lines.tolist()) == [0, 1, 2, 3]

    def test_overlapping_accesses_still_deduplicate(self):
        offs = np.array([0, 32, 64])
        assert unique_cache_lines(offs, access_bytes=64) == 2

    def test_surface_line_tracking_counts_interior_lines(self):
        surf = BufferSurface(np.zeros(512, dtype=np.uint8))
        total, new = surf.mark_lines_offsets(np.array([0]), access_bytes=192)
        assert (total, new) == (3, 3)
        total, new = surf.mark_lines_offsets(np.array([0]), access_bytes=192)
        assert (total, new) == (3, 0)


class TestPredicatedAtomicWriteback:
    def test_disabled_lanes_keep_destination(self):
        surf = BufferSurface((np.arange(8, dtype=np.uint32) * 10).copy())
        ex = FunctionalExecutor({0: surf})
        _load_reg(ex, 1, range(8), UD)        # element offsets
        _load_reg(ex, 2, [1] * 8, UD)         # atomic-add operands
        _load_reg(ex, 3, [7777] * 8, UD)      # dst sentinel
        flag = np.zeros(32, dtype=bool)
        flag[:8] = [True, False] * 4
        ex.flags[0] = flag
        msg = MessageDesc(kind=MsgKind.ATOMIC, surface=0, addr_reg=1,
                          payload_reg=2, payload_bytes=32, atomic_op="add",
                          elem_dtype=UD)
        ex.execute(Instruction(
            Opcode.SEND, 8, RegOperand(3, 0, UD), [],
            pred=Predicate(FlagOperand(0)), msg=msg))
        # Memory: only the even (active) lanes were incremented.
        assert surf.to_numpy().tolist() == [
            v * 10 + (1 - i % 2) for i, v in enumerate(range(8))]
        # Return payload: active lanes get the old value; disabled lanes
        # keep their previous register contents.
        got = ex.grf.dump_reg(3, UD)[:8].tolist()
        assert got == [0, 7777, 20, 7777, 40, 7777, 60, 7777]
