"""Property-based tests: differential checks on core invariants.

- the eager CM machine vs numpy oracles on randomized region patterns,
- the compiled path vs the eager path on randomized straight-line
  kernels (the compiler's most important invariant),
- workload-level invariants (sorting, scan) on adversarial inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import cm
from repro.compiler import compile_kernel
from repro.memory.surfaces import BufferSurface
from repro.workloads import bitonic, prefix_sum
from repro.workloads.common import run_and_time


# -- region algebra ------------------------------------------------------------


@given(st.integers(1, 6), st.integers(1, 4), st.integers(0, 10),
       st.data())
def test_select_write_read_roundtrip(size, stride, offset, data):
    """Writing through a select then reading it back is the identity."""
    n = 64
    if offset + (size - 1) * stride >= n:
        return
    v = cm.vector(cm.int32, n, np.zeros(n))
    payload = data.draw(st.lists(st.integers(-100, 100),
                                 min_size=size, max_size=size))
    v.select(size, stride, offset).assign(payload)
    assert v.select(size, stride, offset).to_numpy().tolist() == payload


@given(st.integers(2, 8), st.integers(2, 8))
def test_format_roundtrip(rows, cols):
    """format() reinterprets without changing bytes."""
    m = cm.matrix(cm.uchar, rows, cols,
                  np.arange(rows * cols) % 256)
    flat = m.format(cm.uchar)
    assert flat.to_numpy().reshape(-1).tolist() == \
        m.to_numpy().reshape(-1).tolist()


@given(st.integers(1, 4), st.integers(0, 3), st.integers(1, 4),
       st.integers(0, 3), st.integers(0, 8))
def test_replicate_matches_index_formula(rep, vstride, width, hstride,
                                         offset):
    """replicate<K,VS,W,HS>(i) equals its documented gather formula."""
    n = 64
    top = offset + (rep - 1) * vstride + (width - 1) * hstride
    if top >= n:
        return
    v = cm.vector(cm.int32, n, np.arange(n))
    out = v.replicate(rep, vstride, width, hstride, offset)
    expect = [offset + b * vstride + w * hstride
              for b in range(rep) for w in range(width)]
    assert out.to_numpy().tolist() == expect


@given(st.lists(st.integers(0, 31), min_size=1, max_size=16))
def test_iselect_matches_fancy_indexing(indices):
    v = cm.vector(cm.float32, 32, np.arange(32))
    idx = cm.vector(cm.ushort, len(indices), indices)
    assert v.iselect(idx).to_numpy().tolist() == \
        [float(i) for i in indices]


@given(st.lists(st.booleans(), min_size=4, max_size=4),
       st.lists(st.integers(-50, 50), min_size=4, max_size=4),
       st.lists(st.integers(-50, 50), min_size=4, max_size=4))
def test_merge_is_elementwise_select(mask, xs, ys):
    v = cm.vector(cm.int32, 4)
    v.merge(cm.vector(cm.int32, 4, xs), cm.vector(cm.int32, 4, ys),
            [int(b) for b in mask])
    expect = [x if b else y for b, x, y in zip(mask, xs, ys)]
    assert v.to_numpy().tolist() == expect


# -- compiled vs eager differential --------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.integers(1, 3), st.integers(0, 15),
       st.integers(-100, 100))
def test_compiled_select_add_matches_eager(size, stride, offset, scalar):
    """Random strided read-modify-write: compiled == eager == numpy."""
    n = 64
    if offset + (size - 1) * stride >= n:
        return

    def body(cmx, buf):
        v = cmx.vector(np.int32, n)
        cmx.read(buf, 0, v)
        ref = v.select(size, stride, offset)
        ref += scalar
        cmx.write(buf, 0, v)

    k = compile_kernel(body, "prop", [("buf", False)])
    data = np.arange(n, dtype=np.int32)
    buf = BufferSurface(data.copy())
    k.run([buf])
    expect = data.copy()
    expect[offset:offset + size * stride:stride][:size] += scalar
    assert buf.to_numpy().tolist() == expect.tolist()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["add", "mul", "min", "max"]),
                min_size=1, max_size=5),
       st.lists(st.integers(-7, 7), min_size=5, max_size=5))
def test_compiled_op_chain_matches_numpy(ops, consts):
    """Random chains of elementwise ops compile and run correctly."""
    n = 32
    np_fn = {"add": np.add, "mul": np.multiply,
             "min": np.minimum, "max": np.maximum}

    def body(cmx, buf):
        v = cmx.vector(np.int32, n)
        cmx.read(buf, 0, v)
        out = cmx.vector(np.int32, n, np.zeros(n))
        out.assign(v)
        for op, c in zip(ops, consts):
            if op == "add":
                out += int(c)
            elif op == "mul":
                out *= int(c)
            else:
                nxt = cmx.vector(np.int32, n, np.full(n, c))
                nxt.merge(out, out < c if op == "min" else out > c)
                out = nxt
        cmx.write(buf, 0, out)

    data = np.arange(n, dtype=np.int32) - 16
    k = compile_kernel(body, "chain", [("buf", False)])
    buf = BufferSurface(data.copy())
    k.run([buf])

    expect = data.astype(np.int64)
    for op, c in zip(ops, consts):
        if op == "add":
            expect = expect + c
        elif op == "mul":
            expect = expect * c
        else:
            expect = np_fn[op](expect, c)
    assert buf.to_numpy().tolist() == \
        expect.astype(np.int32).tolist()


# -- workload invariants -------------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(st.lists(st.integers(0, 2**32 - 1), min_size=512, max_size=512))
def test_bitonic_sorts_arbitrary_inputs(values):
    keys = np.asarray(values, dtype=np.uint32)
    run = run_and_time("cm", lambda d: bitonic.run_cm(d, keys))
    assert np.array_equal(run.output, np.sort(keys))


@settings(max_examples=5, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=512, max_size=512))
def test_prefix_scan_is_cumsum(values):
    v = np.asarray(values, dtype=np.uint32)
    run = run_and_time("cm", lambda d: prefix_sum.run_cm(d, v))
    assert np.array_equal(run.output, np.cumsum(v).astype(np.uint32))
