"""Vector decomposition (Section V): half-separable vectors split."""

import numpy as np

from repro.compiler import compile_kernel
from repro.compiler.frontend import trace_kernel
from repro.compiler.passes import vector_decompose
from repro.memory.surfaces import BufferSurface


def _separable_body(cmx, src, dst):
    v = cmx.vector(np.float32, 32, np.zeros(32))
    a = cmx.vector(np.float32, 16)
    b = cmx.vector(np.float32, 16)
    cmx.read(src, 0, a)
    cmx.read(src, 64, b)
    v.select(16, 1, 0).assign(a)       # writes only the low half
    v.select(16, 1, 16).assign(b)      # writes only the high half
    lo = cmx.vector(np.float32, 16)
    lo.assign(v.select(16, 1, 0))      # reads only the low half
    hi = cmx.vector(np.float32, 16)
    hi.assign(v.select(16, 1, 16))     # reads only the high half
    out = cmx.vector(np.float32, 16)
    out.assign(lo + hi)
    cmx.write(dst, 0, out)


def test_separable_vector_splits():
    fn = trace_kernel(_separable_body, "k", [("src", False),
                                             ("dst", False)])
    assert vector_decompose(fn) >= 1
    # No 32-wide value remains in the split chain's accesses.
    widths = {i.result.vtype.n for i in fn.instrs
              if i.op in ("rdregion", "wrregion") and i.result is not None}
    assert 32 not in widths


def test_decomposed_kernel_still_correct():
    k = compile_kernel(_separable_body, "k",
                       [("src", False), ("dst", False)])
    data = np.arange(32, dtype=np.float32)
    src = BufferSurface(data.copy())
    dst = BufferSurface(np.zeros(16, dtype=np.float32))
    k.run([src, dst])
    assert dst.to_numpy().tolist() == (data[:16] + data[16:]).tolist()


def test_straddling_access_blocks_split():
    def body(cmx, src, dst):
        v = cmx.vector(np.float32, 32, np.zeros(32))
        a = cmx.vector(np.float32, 16)
        cmx.read(src, 0, a)
        v.select(16, 1, 8).assign(a)   # straddles the half boundary
        out = cmx.vector(np.float32, 16)
        out.assign(v.select(16, 1, 8))
        cmx.write(dst, 0, out)

    fn = trace_kernel(body, "k", [("src", False), ("dst", False)])
    assert vector_decompose(fn) == 0


def test_odd_sizes_skipped():
    def body(cmx, src, dst):
        v = cmx.vector(np.float32, 6, np.zeros(6))
        a = cmx.vector(np.float32, 3)
        cmx.read_scattered(src, 0, np.arange(3), a)
        v.select(3, 1, 0).assign(a)
        cmx.write_scattered(dst, 0, np.arange(6), v)

    fn = trace_kernel(body, "k", [("src", False), ("dst", False)])
    assert vector_decompose(fn) == 0
