"""Smoke tests: the fast example scripts run end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_quickstart_runs():
    stdout = _run("quickstart.py")
    assert "correct: True" in stdout
    assert "2x2 transpose" in stdout


def test_compile_and_inspect_runs():
    stdout = _run("compile_and_inspect.py")
    assert "matches the numpy reference: True" in stdout
    assert stdout.count("mov (16|M0)") == 9  # the Fig. 4 block
