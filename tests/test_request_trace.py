"""End-to-end request tracing, SLO tracking, and the flight recorder.

Covers the ISSUE 7 checklist: trace IDs minted at submit propagate
through the queue, batcher, scheduler, and every dispatch tier into one
causally-linked span tree per request; the SLO tracker's attainment /
burn-rate math; the bounded ring recorder with auto-dump on SLO breach,
sanitizer findings, and errors; and the Chrome-trace / waterfall
exports.
"""

import json

import numpy as np
import pytest

from repro.obs.recorder import DumpReason, FlightRecorder
from repro.obs.request import (
    MAX_SPANS, RequestTrace, mint_trace_id, traces_to_chrome,
)
from repro.obs.slo import SLObjective, SLOTracker
from repro.obs.tracing import trace_span
from repro.report import flight
from repro.serve import Request, RequestStatus, ServeCluster
from repro.serve.loadgen import run_loadgen
from repro.serve.workloads import KernelLaunch, ServeWorkload, register
from repro.sim.device import Device

_VEC = 16


def _racy_body(cmx, out, tid):
    # every thread reads and rewrites the same 64 bytes at offset 0
    v = cmx.vector(np.float32, _VEC)
    cmx.read(out, 0, v)
    w = cmx.vector(np.float32, _VEC)
    w.assign(v * np.float32(2.0))
    cmx.write(out, 0, w)


def _make_racy(params):
    def bind(device: Device):
        buf = device.buffer(np.ones(_VEC, dtype=np.float32))
        return [buf], (lambda tid: {"tid": tid[0]})

    return KernelLaunch(_racy_body, "serve_racy", [("out", False)],
                        ["tid"], (8,), bind, None)


register(ServeWorkload("test.racy", "compiled", _make_racy,
                       "deliberately racy kernel (tests only)"))


def _run_direct(cluster, reqs):
    """Drive requests through resolve -> batch -> execute without
    starting the cluster threads (deterministic batching)."""
    work = [w for w in (cluster._resolve(r) for r in reqs)
            if w is not None]
    batches = cluster.batcher.form(work)
    for batch in batches:
        cluster.workers[0]._execute(batch)
    return batches


def _submit_direct(cluster, workload, params=None):
    req = Request(workload=workload, params=dict(params or {}))
    cluster._mint_trace(req)
    cluster.queue.submit(req)
    # take it right back out: the dispatcher thread isn't running
    assert cluster.queue.take(max_items=1) == [req]
    return req


class TestRequestTrace:
    def test_trace_ids_are_unique_and_stamped_at_submit(self):
        cluster = ServeCluster(num_devices=1)
        reqs = [_submit_direct(cluster, "saxpy", {"n": 64})
                for _ in range(4)]
        ids = [r.trace_id for r in reqs]
        assert all(ids) and len(set(ids)) == 4
        assert all(isinstance(r.trace, RequestTrace) for r in reqs)
        assert [r.trace.request_id for r in reqs] == [r.id for r in reqs]

    def test_recorder_off_means_no_trace(self):
        cluster = ServeCluster(num_devices=1, recorder=False)
        req = Request(workload="saxpy", params={"n": 64})
        cluster._mint_trace(req)
        assert req.trace_id is None and req.trace is None

    def test_tree_spans_all_tiers_through_a_coalesced_batch(self):
        """One batch, three same-kernel requests: the sanitized head
        runs sequential, the certified followers take the jit tier —
        and each request still gets its own complete causal tree."""
        cluster = ServeCluster(num_devices=1, batching=True, max_batch=8,
                               validate="first")
        reqs = [_submit_direct(cluster, "saxpy", {"n": 64, "seed": 9})
                for _ in range(3)]
        batches = _run_direct(cluster, reqs)
        assert len(batches) == 1 and batches[0].size == 3

        assert [r.tier for r in reqs] == ["sequential", "jit", "jit"]
        for pos, req in enumerate(reqs):
            tree = cluster.recorder.get(req.trace_id)
            assert tree is req.trace
            names = tree.span_names()
            assert "serve:request" in names
            assert "sanitize_gate" in names and "fold" in names
            assert tree.tier == req.tier
            (sreq,) = tree.find("serve:request")
            assert sreq.attrs["position"] == pos
            assert sreq.attrs["batch"] == batches[0].id
        # gate outcomes: head sanitized, followers admitted via cert
        gate = cluster.workers[0].device.profile.gate_outcomes
        assert gate.get("sanitized") == 1 and gate.get("admitted") == 2

    def test_stage_spans_recorded_through_running_cluster(self):
        with ServeCluster(num_devices=1, slo={"*": 60_000.0}) as cluster:
            req = cluster.submit("saxpy", {"n": 64})
            assert req.wait(30)
            cluster.drain(30)
        tree = cluster.recorder.get(req.trace_id)
        names = tree.span_names()
        for stage in ("queue_wait", "schedule", "batch_assemble",
                      "serve:request", "sanitize_gate", "fold"):
            assert stage in names, f"missing {stage} in {names}"
        assert any(n.startswith("dispatch:") for n in names), names
        # stage spans are causally ordered on one timeline
        t0 = {n.name: n.t0_us for n in tree.roots}
        assert t0["queue_wait"] <= t0["batch_assemble"] <= t0["schedule"]
        assert tree.meta["status"] == "done"
        assert tree.meta["tier"] == req.tier
        assert tree.meta["slo_breached"] is False

    def test_chunk_spans_stay_out_of_request_trees(self):
        """Per-chunk retire accounting is sink-only: it scales with the
        grid, not the request, so the always-on bridge skips it."""
        tr = RequestTrace(mint_trace_id(), workload="w")
        with tr.active():
            with trace_span("dispatch", kernel="k"):
                with trace_span("chunk", kernel="k", threads=4):
                    pass
        assert tr.span_names() == ["dispatch"]

    def test_max_spans_truncation_is_flagged(self):
        tr = RequestTrace("t-cap", workload="w")
        for i in range(MAX_SPANS + 10):
            tr.record("stage", float(i), float(i + 1))
        assert tr.num_spans == MAX_SPANS
        assert tr.truncated
        assert tr.finish().meta["truncated_at_spans"] == MAX_SPANS

    def test_chrome_export_one_row_per_request(self):
        a = RequestTrace("t-a", workload="wa", request_id=1)
        a.record("queue_wait", 0.0, 5.0)
        b = RequestTrace("t-b", workload="wb", request_id=2)
        b.record("queue_wait", 1.0, 2.0)
        doc = traces_to_chrome([a, b])
        rows = {e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert rows == {"t-a wa", "t-b wb"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["trace_id"] for e in spans} == {"t-a", "t-b"}
        assert {e["tid"] for e in spans} == {1, 2}


class TestSLO:
    def test_burn_rate_math(self):
        obj = SLObjective(target_wall_ms=10.0, objective=0.9, window=10)
        tracker = SLOTracker({"*": obj})
        # 8 good + 2 breaches in a 10-wide window: attainment 0.8,
        # error rate 0.2 against a 0.1 budget -> burn rate 2.0
        for _ in range(8):
            assert tracker.observe("w", 5.0, 0.0) is False
        for _ in range(2):
            assert tracker.observe("w", 50.0, 0.0) is True
        snap = tracker.snapshot()["workloads"]["w"]
        assert snap["attainment"] == pytest.approx(0.8)
        assert snap["burn_rate"] == pytest.approx(2.0)
        assert snap["requests"] == 10 and snap["breaches"] == 2

    def test_window_slides(self):
        tracker = SLOTracker(
            {"*": SLObjective(target_wall_ms=10.0, window=4)})
        for _ in range(4):
            tracker.observe("w", 99.0, 0.0)  # all breach
        for _ in range(4):
            tracker.observe("w", 1.0, 0.0)  # window now all good
        snap = tracker.snapshot()["workloads"]["w"]
        assert snap["attainment"] == 1.0 and snap["burn_rate"] == 0.0
        assert snap["breaches"] == 4  # lifetime totals keep history

    def test_failed_requests_always_breach(self):
        tracker = SLOTracker({"*": SLObjective(target_wall_ms=1e9)})
        assert tracker.observe("w", 0.0, 0.0, failed=True) is True

    def test_bare_float_is_wall_ms_target(self):
        tracker = SLOTracker({"saxpy": 10.0})
        obj = tracker.objective_for("saxpy")
        assert obj.target_wall_ms == 10.0 and obj.objective == 0.99
        assert tracker.objective_for("unknown") is None

    def test_sim_us_objective(self):
        obj = SLObjective(target_sim_us=100.0)
        assert obj.met_by(1e9, 50.0) is True  # wall unbounded
        assert obj.met_by(0.0, 200.0) is False

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLObjective(target_wall_ms=1.0, objective=0.0)
        with pytest.raises(ValueError):
            SLObjective()  # no target at all


class TestFlightRecorder:
    def _trace(self, i):
        tr = RequestTrace(f"t-{i:06x}", workload="w", request_id=i)
        tr.record("queue_wait", 0.0, 1.0)
        return tr

    def test_ring_eviction_is_bounded_and_counted(self):
        rec = FlightRecorder(capacity=4)
        traces = [self._trace(i) for i in range(10)]
        for tr in traces:
            rec.record(tr)
        assert len(rec) == 4
        assert rec.evicted == 6 and rec.recorded == 10
        assert rec.get(traces[0].trace_id) is None  # evicted
        assert rec.get(traces[9].trace_id) is traces[9]
        assert [t.trace_id for t in rec.traces()] == \
            [t.trace_id for t in traces[6:]]

    def test_dump_survives_eviction(self):
        rec = FlightRecorder(capacity=2)
        victim = self._trace(0)
        rec.record(victim)
        dump = rec.dump(victim.trace_id, DumpReason.MANUAL, detail="pin")
        for i in range(1, 5):
            rec.record(self._trace(i))
        assert rec.get(victim.trace_id) is None
        assert dump.trace["trace_id"] == victim.trace_id
        assert dump.trace["spans"][0]["name"] == "queue_wait"

    def test_dump_writes_json_file(self, tmp_path):
        rec = FlightRecorder(capacity=4, dump_dir=str(tmp_path))
        tr = self._trace(1)
        rec.record(tr)
        dump = rec.dump(tr, DumpReason.ERROR, detail="boom")
        with open(dump.path) as fh:
            doc = json.load(fh)
        assert doc["reason"] == "error" and doc["detail"] == "boom"
        assert doc["trace"]["trace_id"] == tr.trace_id

    def test_unknown_reason_and_evicted_id(self):
        rec = FlightRecorder(capacity=2)
        with pytest.raises(ValueError):
            rec.dump(self._trace(0), "vibes")
        assert rec.dump("t-nope", DumpReason.MANUAL) is None

    def test_dumps_dropped_never_silent(self):
        rec = FlightRecorder(capacity=8, max_dumps=2)
        for i in range(5):
            tr = self._trace(i)
            rec.record(tr)
            rec.dump(tr, DumpReason.MANUAL)
        assert len(rec.dumps) == 2 and rec.dumps_dropped == 3
        assert rec.stats()["dumps_dropped"] == 3


class TestClusterAutoDump:
    def test_slo_breach_auto_dumps_the_trace(self):
        cluster = ServeCluster(
            num_devices=1,
            slo={"*": SLObjective(target_sim_us=1e-9)})  # always breach
        req = _submit_direct(cluster, "saxpy", {"n": 64})
        _run_direct(cluster, [req])
        assert req.status is RequestStatus.DONE
        assert req.slo_breached is True
        (dump,) = cluster.recorder.dumps
        assert dump.reason == DumpReason.SLO_BREACH
        assert dump.trace_id == req.trace_id
        assert cluster.recorder.get(req.trace_id).meta["slo_breached"]
        snap = cluster.report()["slo"]
        assert snap["overall"]["breaches"] == 1

    def test_sanitizer_findings_auto_dump(self):
        cluster = ServeCluster(num_devices=1, validate="always")
        req = _submit_direct(cluster, "test.racy")
        _run_direct(cluster, [req])
        assert req.status is RequestStatus.DONE
        assert req.sanitized_launches == 1
        assert req.sanitize_findings, "racy kernel produced no findings"
        (dump,) = cluster.recorder.dumps
        assert dump.reason == DumpReason.SANITIZER
        assert "RACY" in dump.detail
        # the racy kernel was forced onto the scalar tier
        assert req.tier == "sequential"
        gate = cluster.report()["sanitize_gate"]
        assert gate.get("forced_scalar", 0) + gate.get("sanitized", 0) >= 1

    def test_failed_request_auto_dumps(self):
        cluster = ServeCluster(num_devices=1)
        req = _submit_direct(cluster, "saxpy", {"n": 7})  # n % 16 != 0
        work = cluster._resolve(req)
        assert work is None  # resolve fails the request
        assert req.status is RequestStatus.FAILED
        (dump,) = cluster.recorder.dumps
        assert dump.reason == DumpReason.ERROR
        assert "n must divide" in dump.detail

    def test_report_tiers_and_gate_sections(self):
        cluster = ServeCluster(num_devices=1, validate="first")
        reqs = [_submit_direct(cluster, "saxpy", {"n": 64, "seed": 3})
                for _ in range(3)]
        _run_direct(cluster, reqs)
        report = cluster.report()
        assert report["tiers"].get("sequential") == 1
        assert report["tiers"].get("jit") == 2
        assert report["recorder"]["recorded"] == 3


class TestLoadgenAndViewer:
    def test_loadgen_trace_out_and_slo_sections(self, tmp_path):
        out = tmp_path / "trace.json"
        report = run_loadgen(devices=1, requests=12, seed=1,
                             rate_rps=1e6, trace_out=str(out),
                             slo_target_ms=60_000.0)
        assert report["loadgen"]["failed"] == 0
        assert report["loadgen"]["trace_out"] == str(out)
        assert report["slo"]["overall"]["requests"] == 12
        assert report["recorder"]["recorded"] == 12
        doc = json.loads(out.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len({e["args"]["trace_id"] for e in spans}) == 12

    def test_flight_viewer_renders_waterfalls(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        run_loadgen(devices=1, requests=6, seed=2, rate_rps=1e6,
                    trace_out=str(out), slo_target_ms=None)
        assert flight.main([str(out), "--slowest", "2"]) == 0
        text = capsys.readouterr().out
        assert "2 of 6 requests shown" in text
        assert "queue_wait" in text and "serve:request" in text

    def test_flight_viewer_reads_flight_dumps(self, tmp_path, capsys):
        cluster = ServeCluster(num_devices=1,
                               dump_dir=str(tmp_path),
                               slo={"*": SLObjective(target_sim_us=1e-9)})
        req = _submit_direct(cluster, "saxpy", {"n": 64})
        _run_direct(cluster, [req])
        (dump,) = cluster.recorder.dumps
        assert flight.main([dump.path]) == 0
        text = capsys.readouterr().out
        assert req.trace_id in text and "sanitize_gate" in text

    def test_flight_viewer_unknown_trace_id(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        run_loadgen(devices=1, requests=2, seed=3, rate_rps=1e6,
                    trace_out=str(out), slo_target_ms=None)
        assert flight.main([str(out), "--trace-id", "t-zzzzzz"]) == 1
