"""The autotuner subsystem: spaces, search, registry, tuned serving.

Covers the ISSUE 10 checklist: deterministic space enumeration and
constraint filtering, deterministic search with a budget cap, the
bit-exact correctness gate rejecting a deliberately-wrong variant,
registry persistence and reload, kernel-cache pre-seeding that survives
``Device.reset``, per-machine winners differing across generations, and
a mixed-generation ServeCluster dispatching each device its own tuned
variant (asserted through both ``report()`` and the request traces).
"""

import numpy as np
import pytest

from repro.serve import RequestStatus, ServeCluster
from repro.sim.device import Device
from repro.sim.machine import GEN9_SKL, GEN11_ICL, GEN12_TGL, SIMD32_APL
from repro.tune import (
    Knob, TunableWorkload, TunedEntry, TunedRegistry, TuneSpace,
    canonical_point, get_tunable, param_digest, point_label, tune,
    tunable_families,
)
from repro.workloads import transpose as tp_mod


class TestTuneSpace:
    def test_points_are_deterministic_and_valid(self):
        space = get_tunable("transpose").space_for({"n": 256})
        first = list(space.points())
        second = list(space.points())
        assert first == second
        assert first, "space must have valid points"
        assert all(space.is_valid(p) for p in first)
        # Constraint filtering shrinks the declared grid.
        assert len(first) < space.size()

    def test_constraint_filters_invalid_points(self):
        space = get_tunable("transpose").space_for({"n": 256})
        # The register-block path only unrolls up to a 16-edge tile.
        assert not space.is_valid({"tile": 32, "use_slm": 0, "simd": 16})
        # ocl.enqueue requires lsize % simd == 0, i.e. simd <= tile.
        assert not space.is_valid({"tile": 16, "use_slm": 1, "simd": 32})
        # The SLM path at full width is the APL winner — must be legal.
        assert space.is_valid({"tile": 32, "use_slm": 1, "simd": 32})
        # Off-grid values are invalid regardless of constraint.
        assert not space.is_valid({"tile": 7, "use_slm": 0, "simd": 16})

    def test_default_point_is_the_hand_tuned_baseline(self):
        space = get_tunable("transpose").space_for({"n": 256})
        default = space.default_point()
        assert default == {"tile": tp_mod.TILE, "use_slm": 0, "simd": 16}
        assert default in list(space.points())

    def test_neighbors_are_valid_one_knob_steps(self):
        space = get_tunable("transpose").space_for({"n": 256})
        default = space.default_point()
        for cand in space.neighbors(default):
            assert space.is_valid(cand)
            diff = [k for k in cand if cand[k] != default[k]]
            assert len(diff) == 1

    def test_digest_and_label_are_order_independent(self):
        assert param_digest({"a": 1, "b": 2}) == param_digest({"b": 2, "a": 1})
        assert param_digest({"a": 1}) != param_digest({"a": 2})
        assert point_label({"bn": 16, "bm": 8}) == "bm=8,bn=16"
        assert canonical_point({"y": 1, "x": 0}) == (("x", 0), ("y", 1))

    def test_bad_spaces_are_rejected(self):
        with pytest.raises(ValueError):
            Knob("empty", ())
        with pytest.raises(ValueError):
            TuneSpace(knobs=[Knob("a", (1,)), Knob("a", (2,))])

    def test_all_registered_families_have_admissible_defaults(self):
        assert set(tunable_families()) == \
            {"gemm", "linear_filter", "systolic", "transpose"}
        for family in tunable_families():
            wl = get_tunable(family)
            space = wl.space_for(dict(wl.default_problem))
            assert space.is_valid(space.default_point())


# -- search ------------------------------------------------------------------
#
# Search tests run the transpose family: its variants interpret eagerly
# (no compile cost), so a full 9-point grid scores in well under a
# second per machine.


def _toy_workload() -> TunableWorkload:
    """A tiny family with one knob that can be correct, wrong, or crash."""
    problem = {"n": 16}

    def space_fn(p):
        return TuneSpace(knobs=[Knob("mode", (0, 1, 2))],
                         default={"mode": 0})

    def inputs_fn(p, seed):
        rng = np.random.default_rng(seed)
        return {"a": rng.standard_normal(
            (p["n"], p["n"])).astype(np.float32)}

    def reference_fn(p, inputs):
        return inputs["a"].T.copy()

    def variant_fn(p, point):
        def run(device, inputs):
            if point["mode"] == 2:
                raise ValueError("deliberately broken variant")
            out = tp_mod.run_cm(device, inputs["a"], tile=4)
            if point["mode"] == 1:
                out = out + 1.0  # silently wrong output
            return out

        from repro.tune.workloads import Variant
        return Variant(family="toy", label=point_label(point),
                       point=dict(point), kind="eager",
                       kernel_name="toy", run=run)

    return TunableWorkload(
        family="toy", description="test-only family",
        default_problem=problem, space_fn=space_fn, inputs_fn=inputs_fn,
        reference_fn=reference_fn, variant_fn=variant_fn)


class TestSearch:
    def test_grid_search_is_deterministic(self):
        a = tune("transpose", GEN9_SKL, problem={"n": 64}, strategy="grid")
        b = tune("transpose", GEN9_SKL, problem={"n": 64}, strategy="grid")
        assert a.best_point == b.best_point
        assert a.best_sim_us == b.best_sim_us
        assert [e.label for e in a.evaluations] == \
            [e.label for e in b.evaluations]
        assert [e.sim_us for e in a.evaluations] == \
            [e.sim_us for e in b.evaluations]

    def test_winner_never_loses_to_the_baseline(self):
        res = tune("transpose", GEN9_SKL, problem={"n": 64})
        assert res.baseline_sim_us is not None
        assert res.best_sim_us <= res.baseline_sim_us
        assert res.speedup >= 1.0

    def test_budget_caps_evaluations_but_keeps_the_baseline(self):
        res = tune("transpose", GEN9_SKL, problem={"n": 64}, budget=3)
        assert res.n_evaluated <= 3
        # The hand-tuned default is always scored first.
        assert res.evaluations[0].point == \
            get_tunable("transpose").space_for({"n": 64}).default_point()

    def test_hill_climb_finds_an_admissible_winner(self):
        res = tune("transpose", GEN9_SKL, problem={"n": 64},
                   strategy="hill")
        assert res.strategy == "hill"
        assert res.best_sim_us > 0
        assert res.speedup >= 1.0
        # The climb explores less than the grid does.
        grid = tune("transpose", GEN9_SKL, problem={"n": 64})
        assert res.n_evaluated <= grid.n_evaluated

    def test_machines_disagree_about_the_transpose_winner(self):
        """Gen9's 168 threads want small register tiles; APL's 768-thread
        SIMD32 fabric tunes into the SLM path at full dispatch width."""
        gen9 = tune("transpose", GEN9_SKL)
        apl = tune("transpose", SIMD32_APL)
        assert gen9.best_point != apl.best_point
        assert gen9.best_point["use_slm"] == 0
        assert apl.best_point == {"tile": 32, "use_slm": 1, "simd": 32}

    def test_correctness_gate_rejects_wrong_output(self):
        res = tune(_toy_workload(), GEN9_SKL)
        by_label = {e.label: e for e in res.evaluations}
        assert by_label["mode=0"].status == "ok"
        assert by_label["mode=1"].status == "wrong_result"
        assert by_label["mode=2"].status == "run_error"
        assert res.best_point == {"mode": 0}
        assert res.n_admissible == 1

    def test_no_admissible_point_raises(self):
        wl = _toy_workload()
        broken = TunableWorkload(
            family="toy", description=wl.description,
            default_problem=wl.default_problem,
            space_fn=lambda p: TuneSpace(knobs=[Knob("mode", (1, 2))],
                                         default={"mode": 1}),
            inputs_fn=wl.inputs_fn, reference_fn=wl.reference_fn,
            variant_fn=wl.variant_fn)
        with pytest.raises(RuntimeError, match="no admissible point"):
            tune(broken, GEN9_SKL)

    def test_bad_arguments_are_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            tune("transpose", GEN9_SKL, strategy="annealing")
        with pytest.raises(ValueError, match="budget"):
            tune("transpose", GEN9_SKL, budget=0)
        with pytest.raises(KeyError):
            get_tunable("nonesuch")


# -- registry ----------------------------------------------------------------


def _entry(family, problem, machine_name, point, label=None, sim_us=1.0):
    return TunedEntry(
        family=family, problem=dict(problem),
        param_digest=param_digest(problem), machine_name=machine_name,
        point=dict(point), label=label or point_label(point),
        sim_us=sim_us, baseline_sim_us=2.0)


class TestTunedRegistry:
    def test_record_lookup_save_load_roundtrip(self, tmp_path):
        res = tune("transpose", GEN9_SKL, problem={"n": 64})
        reg = TunedRegistry()
        entry = reg.record(res)
        assert len(reg) == 1
        hit = reg.lookup("transpose", {"n": 64}, GEN9_SKL.name)
        assert hit is entry
        assert hit.speedup == res.speedup
        # Problem identity is by digest: a different shape misses.
        assert reg.lookup("transpose", {"n": 128}, GEN9_SKL.name) is None
        assert reg.lookup("transpose", {"n": 64}, GEN12_TGL.name) is None

        path = tmp_path / "tuned.json"
        reg.save(path)
        loaded = TunedRegistry.load(path)
        assert len(loaded) == 1
        back = loaded.lookup("transpose", {"n": 64}, GEN9_SKL.name)
        assert back.point == entry.point
        assert back.sim_us == entry.sim_us
        assert loaded.best_point("transpose", {"n": 64}, GEN9_SKL.name) \
            == res.best_point

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            TunedRegistry.load(path)

    def test_preseed_compiles_and_survives_device_reset(self):
        problem = {"m": 32, "n": 32, "k": 16}
        point = {"bm": 8, "bn": 16, "ktile": 16}
        reg = TunedRegistry()
        reg.add(_entry("gemm", problem, GEN9_SKL.name, point))
        device = Device(GEN9_SKL)
        assert reg.preseed(device) == 1
        misses_after_seed = device.kernel_cache.stats.misses
        assert misses_after_seed >= 1

        wl = get_tunable("gemm")
        inputs = wl.make_inputs(problem)
        out = wl.variant(problem, point).run(device, inputs)
        assert np.array_equal(out, wl.reference(problem, inputs))
        assert device.kernel_cache.stats.hits >= 1
        assert device.kernel_cache.stats.misses == misses_after_seed

        # reset() keeps the kernel cache (zeroing its stats): the tuned
        # program is still hot, so the rerun hits without a recompile.
        device.reset()
        wl.variant(problem, point).run(device, inputs)
        assert device.kernel_cache.stats.misses == 0
        assert device.kernel_cache.stats.hits >= 1

    def test_preseed_skips_non_compiled_variants_and_other_machines(self):
        reg = TunedRegistry()
        reg.add(_entry("transpose", {"n": 64}, GEN9_SKL.name,
                       {"tile": 8, "use_slm": 0, "simd": 16}))
        reg.add(_entry("gemm", {"m": 32, "n": 32, "k": 16},
                       GEN12_TGL.name, {"bm": 8, "bn": 16, "ktile": 16}))
        device = Device(GEN9_SKL)
        # The Gen9 entry is eager (nothing to compile); the compiled
        # entry belongs to another machine.
        assert reg.preseed(device) == 0

    def test_registry_survives_pickling_without_its_lock(self):
        import pickle
        reg = TunedRegistry()
        reg.add(_entry("transpose", {"n": 64}, GEN9_SKL.name,
                       {"tile": 8, "use_slm": 0, "simd": 16}))
        clone = pickle.loads(pickle.dumps(reg))
        assert len(clone) == 1
        assert clone.lookup("transpose", {"n": 64}, GEN9_SKL.name).point \
            == {"tile": 8, "use_slm": 0, "simd": 16}


# -- serving -----------------------------------------------------------------


def _find_span(node, name):
    if node.get("name") == name:
        return node
    for child in node.get("children", ()):
        hit = _find_span(child, name)
        if hit is not None:
            return hit
    return None


class TestTunedServing:
    def test_mixed_generation_cluster_serves_per_machine_variants(self):
        """Two devices of different generations behind one queue: each
        request is served with the variant tuned for the machine it
        landed on, visible in the request stamp, the report, and the
        trace."""
        problem = {"n": 256}
        reg = TunedRegistry()
        reg.add(_entry("transpose", problem, GEN9_SKL.name,
                       {"tile": 8, "use_slm": 0, "simd": 16}))
        reg.add(_entry("transpose", problem, SIMD32_APL.name,
                       {"tile": 32, "use_slm": 1, "simd": 32}))
        with ServeCluster(num_devices=2, machine=[GEN9_SKL, SIMD32_APL],
                          batching=False, tuned=reg) as cluster:
            reqs = [cluster.submit("tuned.transpose",
                                   {"n": 256, "check": True})
                    for _ in range(6)]
            assert cluster.drain(timeout=120.0)

        by_machine = {}
        for req in reqs:
            assert req.status is RequestStatus.DONE
            assert req.tier == "tuned"
            assert req.variant is not None
            machine = cluster.devices[req.device_index].machine.name
            by_machine.setdefault(machine, set()).add(req.variant)
        assert by_machine[GEN9_SKL.name] == {"simd=16,tile=8,use_slm=0"}
        assert by_machine[SIMD32_APL.name] == {"simd=32,tile=32,use_slm=1"}

        report = cluster.report()
        assert report["tuned"]["enabled"]
        assert report["tuned"]["entries"] == 2
        assert set(report["tuned"]["variants_served"]) == {
            "transpose:simd=16,tile=8,use_slm=0",
            "transpose:simd=32,tile=32,use_slm=1",
        }
        assert set(report["machines"]) == {GEN9_SKL.name, SIMD32_APL.name}
        # Each device's own variant tally names only its machine's winner.
        for dev in report["per_device"]:
            assert len(dev["variants"]) <= 1

        # The tuned dispatch is traced, with the resolved variant.
        traced = next(r for r in reqs if r.trace is not None)
        tree = traced.trace.to_dict()
        span = None
        for root in tree["spans"]:
            span = span or _find_span(root, "tuned_variant")
        assert span is not None
        assert span["attrs"]["tuned"] is True
        assert span["attrs"]["variant"] == traced.variant

    def test_untuned_machine_falls_back_to_the_default_variant(self):
        reg = TunedRegistry()  # empty: nothing tuned for this machine
        with ServeCluster(num_devices=1, machine=GEN11_ICL,
                          batching=False, tuned=reg) as cluster:
            req = cluster.submit("tuned.transpose", {"n": 64, "check": True})
            assert req.wait(60.0)
            assert req.status is RequestStatus.DONE
            assert req.variant == "simd=16,tile=16,use_slm=0"
        tree = req.trace.to_dict()
        span = None
        for root in tree["spans"]:
            span = span or _find_span(root, "tuned_variant")
        assert span is not None and span["attrs"]["tuned"] is False

    def test_tuned_requests_with_same_problem_batch_together(self):
        from repro.serve import Request
        reg = TunedRegistry()
        with ServeCluster(num_devices=1, batching=True, max_batch=8,
                          tuned=reg) as cluster:
            reqs = [Request(workload="tuned.transpose", params={"n": 64})
                    for _ in range(3)]
            items = [cluster._resolve(r) for r in reqs]
            assert all(i is not None and i.kind == "tuned" for i in items)
            keys = {i.batch_key for i in items}
            assert len(keys) == 1 and None not in keys
            batches = cluster.batcher.form(items)
            assert len(batches) == 1 and batches[0].size == 3


class TestSimd32Machine:
    def test_apl_is_natively_32_wide_for_f32(self):
        assert SIMD32_APL.native_simd(4) == 32
        assert GEN11_ICL.native_simd(4) == 16
        assert SIMD32_APL.max_operand_bytes == 128

    def test_apl_has_more_threads_and_wider_alus_than_gen11(self):
        from repro.isa.dtypes import F
        assert SIMD32_APL.num_threads > GEN11_ICL.num_threads
        assert SIMD32_APL.alu_lanes_per_cycle(F) > \
            GEN11_ICL.alu_lanes_per_cycle(F)
