"""Gen type system: promotion and conversion semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa.dtypes import (
    ALL_DTYPES, B, D, DF, F, HF, Q, UB, UD, UQ, UW, W,
    convert, dtype_by_name, dtype_from_numpy, promote,
)


class TestLookup:
    def test_by_name(self):
        assert dtype_by_name("f") is F
        assert dtype_by_name("ub") is UB
        assert dtype_by_name("df") is DF

    def test_by_name_unknown(self):
        with pytest.raises(ValueError):
            dtype_by_name("zz")

    def test_from_numpy(self):
        assert dtype_from_numpy(np.float32) is F
        assert dtype_from_numpy(np.uint8) is UB
        assert dtype_from_numpy(np.int64) is Q

    def test_sizes(self):
        assert [t.size for t in (UB, W, D, Q, F, DF, HF)] == \
            [1, 2, 4, 8, 4, 8, 2]

    def test_min_max(self):
        assert UB.min == 0 and UB.max == 255
        assert W.min == -32768 and W.max == 32767
        assert F.max > 1e38


class TestPromotion:
    def test_identity(self):
        for t in ALL_DTYPES:
            assert promote(t, t) is t

    def test_float_beats_int(self):
        assert promote(F, D) is F
        assert promote(UB, F) is F
        assert promote(Q, DF) is DF

    def test_wider_float_wins(self):
        assert promote(F, DF) is DF
        assert promote(HF, F) is F

    def test_small_ints_promote_to_dword(self):
        assert promote(UB, B) is D
        assert promote(W, UW) is D
        assert promote(UB, W) is D

    def test_mixed_sign_same_width_unsigned(self):
        assert promote(D, UD) is UD
        assert promote(Q, UQ) is UQ

    def test_wider_int_wins(self):
        assert promote(D, Q) is Q
        assert promote(UD, UQ) is UQ


class TestConversion:
    def test_float_to_int_truncates_toward_zero(self):
        out = convert(np.asarray([1.9, -1.9, 0.5]), D)
        assert out.tolist() == [1, -1, 0]

    def test_int_narrowing_wraps(self):
        out = convert(np.asarray([256, 257, -1]), UB)
        assert out.tolist() == [0, 1, 255]

    def test_saturating_narrowing_clamps(self):
        out = convert(np.asarray([300, -5, 100]), UB, saturate=True)
        assert out.tolist() == [255, 0, 100]

    def test_saturating_float_source(self):
        out = convert(np.asarray([300.7, -5.1, 100.2]), UB, saturate=True)
        assert out.tolist() == [255, 0, 100]

    def test_to_float(self):
        out = convert(np.asarray([1, 2, 3], dtype=np.uint8), F)
        assert out.dtype == np.float32
        assert out.tolist() == [1.0, 2.0, 3.0]

    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_wrap_matches_c_semantics(self, x):
        out = convert(np.asarray([x]), UW)
        assert out[0] == x % 65536

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_float_trunc_matches_int_cast(self, x):
        out = convert(np.asarray([x]), D)
        assert out[0] == int(x)
