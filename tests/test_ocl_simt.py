"""SimtValue semantics: the implicitly vectorized work-item values."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import Device, ocl
from repro.isa.dtypes import F, UD, UW
from repro.ocl.simt import SimtValue, select, where


class TestConstruction:
    def test_of_and_splat(self):
        v = SimtValue.of(np.arange(4), np.uint32)
        assert v.width == 4 and v.dtype is UD
        s = SimtValue.splat(2.5, 8)
        assert s.to_numpy().tolist() == [2.5] * 8
        assert s.dtype is F

    def test_astype(self):
        v = SimtValue.of([1.9, -1.9], np.float32)
        out = v.astype(np.int32)
        assert out.to_numpy().tolist() == [1, -1]


class TestArithmetic:
    def test_elementwise(self):
        a = SimtValue.of([1, 2, 3], np.int32)
        b = SimtValue.of([10, 20, 30], np.int32)
        assert (a + b).to_numpy().tolist() == [11, 22, 33]
        assert (b - a).to_numpy().tolist() == [9, 18, 27]
        assert (a * 2).to_numpy().tolist() == [2, 4, 6]
        assert (1 + a).to_numpy().tolist() == [2, 3, 4]

    def test_c_division(self):
        a = SimtValue.of([7, -7], np.int32)
        assert (a / 2).to_numpy().tolist() == [3, -3]

    def test_width_mismatch(self):
        a = SimtValue.of([1, 2], np.int32)
        b = SimtValue.of([1, 2, 3], np.int32)
        with pytest.raises(ValueError):
            _ = a + b

    def test_comparison_masks(self):
        a = SimtValue.of([1, 5, 3], np.int32)
        m = a > 2
        assert m.dtype is UW
        assert m.to_numpy().tolist() == [0, 1, 1]
        assert m.as_mask().tolist() == [False, True, True]

    def test_shift_and_bitwise(self):
        a = SimtValue.of([1, 2, 4], np.uint32)
        assert (a << 1).to_numpy().tolist() == [2, 4, 8]
        assert (a & 6).to_numpy().tolist() == [0, 2, 4]
        assert (a | 1).to_numpy().tolist() == [1, 3, 5]


class TestSelectWhere:
    def test_where(self):
        cond = SimtValue.of([1, 0, 1], np.uint16)
        out = where(cond, 10, 20)
        assert out.to_numpy().tolist() == [10, 20, 10]

    def test_select_opencl_argument_order(self):
        cond = SimtValue.of([1, 0], np.uint16)
        out = select(SimtValue.of([7, 7], np.int32),
                     SimtValue.of([9, 9], np.int32), cond)
        # select(b, a, c) == c ? a : b
        assert out.to_numpy().tolist() == [9, 7]

    def test_where_requires_mask(self):
        with pytest.raises(TypeError):
            where(1, 2, 3)


class TestBuiltins:
    def test_math_builtins(self):
        dev = Device()
        got = {}

        def kernel():
            v = ocl.SimtValue.of(np.full(16, 4.0), np.float32)
            got["sqrt"] = ocl.native_sqrt(v).vals[0]
            got["rsqrt"] = ocl.native_rsqrt(v).vals[0]
            got["recip"] = ocl.native_recip(v).vals[0]
            got["mad"] = ocl.mad(v, 2.0, 1.0).vals[0]
            got["min"] = ocl.fmin_(v, 3.0).vals[0]

        ocl.enqueue(dev, kernel, 16, 16)
        assert got["sqrt"] == 2.0
        assert got["rsqrt"] == 0.5
        assert got["recip"] == 0.25
        assert got["mad"] == 9.0
        assert got["min"] == 3.0

    def test_uniform_reductions(self):
        dev = Device()
        got = {}

        def kernel():
            lane = ocl.get_sub_group_local_id()
            got["max"] = ocl.uniform_max(lane)
            got["min"] = ocl.uniform_min(lane)
            got["any"] = ocl.uniform_any(lane > 100)

        ocl.enqueue(dev, kernel, 16, 16)
        assert got == {"max": 15, "min": 0, "any": False}

    def test_builtins_require_kernel_context(self):
        with pytest.raises(RuntimeError):
            ocl.get_global_id(0)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=16),
       st.integers(1, 64))
def test_simt_arith_matches_numpy(values, scalar):
    a = SimtValue.of(values, np.int64)
    expect = (np.asarray(values, dtype=np.int64) * scalar + 7)
    out = a * scalar + 7
    assert out.to_numpy().tolist() == expect.tolist()
