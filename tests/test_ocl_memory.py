"""OpenCL memory operations, subgroup extensions, images."""

import numpy as np

from repro import Device, ocl


def run_subgroup(kernel, dev=None, **kw):
    dev = dev or Device()
    return dev, ocl.enqueue(dev, kernel, global_size=16, local_size=16, **kw)


class TestLoadStore:
    def test_coalesced_load_one_line(self):
        dev = Device()
        buf = dev.buffer(np.arange(16, dtype=np.uint32))
        lines = []

        def kernel():
            gid = ocl.get_global_id(0)
            ocl.load(buf, gid, dtype=np.uint32)

        _, res = run_subgroup(kernel, dev)
        ev = [e for tr_ev in [res.run.timing] for e in []]  # placeholder
        assert res.run.timing.dram_bytes == 64  # one 64B line

    def test_strided_load_many_lines(self):
        dev = Device()
        buf = dev.buffer(np.zeros(16 * 16, dtype=np.uint32))

        def kernel():
            gid = ocl.get_global_id(0)
            ocl.load(buf, gid * 16, dtype=np.uint32)

        _, res = run_subgroup(kernel, dev)
        assert res.run.timing.dram_bytes == 16 * 64  # every lane its own line

    def test_masked_store(self):
        dev = Device()
        buf = dev.buffer(np.zeros(16, dtype=np.uint32))

        def kernel():
            gid = ocl.get_global_id(0)
            ocl.store(buf, gid, gid + 1, mask=gid < 8)

        run_subgroup(kernel, dev)
        host = buf.to_numpy()
        assert host[:8].tolist() == list(range(1, 9))
        assert host[8:].tolist() == [0] * 8

    def test_vload_vstore(self):
        dev = Device()
        src = dev.buffer(np.arange(64, dtype=np.uint32))
        dst = dev.buffer(np.zeros(64, dtype=np.uint32))

        def kernel():
            gid = ocl.get_global_id(0)
            comps = ocl.vload(src, 4, gid, dtype=np.uint32)
            ocl.vstore(dst, 4, gid, [c + 1 for c in comps])

        run_subgroup(kernel, dev)
        assert dst.to_numpy().tolist() == list(range(1, 65))

    def test_load_uniform(self):
        dev = Device()
        buf = dev.buffer(np.asarray([3.5, 4.5], dtype=np.float32))
        got = []

        def kernel():
            got.append(ocl.load_uniform(buf, 1, dtype=np.float32))

        run_subgroup(kernel, dev)
        assert got == [4.5]


class TestSubgroupOps:
    def test_shuffle_dynamic(self):
        dev = Device()
        out = []

        def kernel():
            lane = ocl.get_sub_group_local_id()
            rev = 15 - lane
            v = ocl.sub_group_shuffle(lane.astype(np.float32), rev)
            out.append(v.to_numpy().tolist())

        run_subgroup(kernel, dev)
        assert out[0] == list(range(15, -1, -1))

    def test_broadcast(self):
        dev = Device()
        out = []

        def kernel():
            lane = ocl.get_sub_group_local_id()
            out.append(ocl.sub_group_broadcast(lane, 7).to_numpy().tolist())

        run_subgroup(kernel, dev)
        assert out[0] == [7] * 16

    def test_reduce_add(self):
        dev = Device()
        out = []

        def kernel():
            lane = ocl.get_sub_group_local_id()
            out.append(int(ocl.sub_group_reduce_add(lane).vals[0]))

        run_subgroup(kernel, dev)
        assert out[0] == sum(range(16))

    def test_block_read_write(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.uint32))
        dst = dev.buffer(np.zeros(32, dtype=np.uint32))

        def kernel():
            v = ocl.intel_sub_group_block_read(src, 16, dtype=np.uint32)
            ocl.intel_sub_group_block_write(dst, 0, v)

        run_subgroup(kernel, dev)
        assert dst.to_numpy()[:16].tolist() == list(range(16, 32))

    def test_block_read_rows(self):
        dev = Device()
        src = dev.buffer(np.arange(64, dtype=np.float32))
        got = []

        def kernel():
            rows = ocl.intel_sub_group_block_read_rows(
                src, 0, 3, 16, dtype=np.float32)
            got.append([r.vals[0] for r in rows])

        run_subgroup(kernel, dev)
        assert got[0] == [0.0, 16.0, 32.0]


class TestImagesAndAtomics:
    def test_read_imagef_clamps(self):
        dev = Device()
        img = dev.image2d(np.arange(12, dtype=np.uint8).reshape(2, 6), 3)
        got = {}

        def kernel():
            x = ocl.SimtValue.of(np.full(16, -5), np.int32)
            y = ocl.SimtValue.of(np.zeros(16), np.int32)
            r, g, b, a = ocl.read_imagef(img, x, y)
            got["rgb"] = (r.vals[0], g.vals[0], b.vals[0], a.vals[0])

        run_subgroup(kernel, dev)
        assert got["rgb"] == (0.0, 1.0, 2.0, 0.0)

    def test_write_imageui(self):
        dev = Device()
        img = dev.image2d(np.zeros((2, 6), dtype=np.uint8), 3)

        def kernel():
            lane = ocl.get_sub_group_local_id()
            x = lane % 2
            y = lane * 0
            chans = (x * 10 + 1, x * 10 + 2, x * 10 + 3)
            ocl.write_imageui(img, x.astype(np.int32), y.astype(np.int32),
                              chans, mask=lane < 2)

        run_subgroup(kernel, dev)
        assert img.to_numpy()[0].tolist() == [1, 2, 3, 11, 12, 13]

    def test_sampler_event_recorded(self):
        dev = Device()
        img = dev.image2d(np.zeros((4, 4), dtype=np.uint8), 1)

        def kernel():
            gid = ocl.get_global_id(0)
            ocl.read_imagef(img, gid.astype(np.int32) % 4,
                            gid.astype(np.int32) * 0)

        _, res = run_subgroup(kernel, dev)
        assert res.run.timing.texels == 16

    def test_global_atomics(self):
        dev = Device()
        counters = dev.buffer(np.zeros(2, dtype=np.uint32))

        def kernel():
            gid = ocl.get_global_id(0)
            ocl.atomic_inc_global(counters, gid % 2)

        run_subgroup(kernel, dev)
        assert counters.to_numpy().tolist() == [8, 8]

    def test_slm_atomics(self):
        dev = Device()
        out = dev.buffer(np.zeros(1, dtype=np.uint32))

        def kernel(slm):
            gid = ocl.get_global_id(0)
            ocl.atomic_inc_slm(slm, gid * 0)
            yield ocl.barrier()
            v = ocl.slm_load(slm, gid * 0, dtype=np.uint32)
            ocl.store(out, gid * 0, v, mask=gid == 0)

        ocl.enqueue(dev, kernel, 16, 16, slm_bytes=16)
        assert out.to_numpy()[0] == 16
