"""The serving layer: queue, policies, batcher, cluster, loadgen.

Covers the ISSUE 3 satellite checklist: per-policy routing decisions on
scripted sequences, the batcher's launch-overhead amortization in
simulated time, a multi-threaded stress run whose totals must be
interleaving-independent, the thread-safe kernel cache, Device.reset
for pooled reuse, and the shared message-geometry module.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.compiler.cache import KernelCache
from repro.isa import msg_geometry as geom
from repro.serve import (
    Backpressure, DynamicBatcher, Request, RequestStatus, ServeCluster,
    SubmissionQueue, make_policy, percentiles,
)
from repro.serve.batcher import WorkItem
from repro.serve.loadgen import build_trace, run_loadgen
from repro.serve.workloads import get_workload
from repro.sim.device import Device
from repro.workloads.common import run_on


def _fake_workers(loads):
    return [SimpleNamespace(load_sim_us=lambda lo=lo: lo) for lo in loads]


def _stub_batch(key):
    return SimpleNamespace(affinity_key=key)


class TestPolicies:
    def test_round_robin_cycles_in_order(self):
        policy = make_policy("round-robin")
        workers = _fake_workers([0.0, 0.0, 0.0])
        picks = [policy.select(_stub_batch(("k",)), workers)
                 for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_fifo_is_an_alias_for_round_robin(self):
        assert make_policy("fifo").name == "round-robin"

    def test_least_loaded_picks_min_busy_with_index_tiebreak(self):
        policy = make_policy("least-loaded")
        assert policy.select(_stub_batch(None),
                             _fake_workers([50.0, 10.0, 30.0])) == 1
        assert policy.select(_stub_batch(None),
                             _fake_workers([10.0, 10.0, 30.0])) == 0

    def test_cache_affinity_scripted_sequence(self):
        """First placement by load, then sticky per kernel key."""
        policy = make_policy("cache-affinity")
        workers = [SimpleNamespace(load_sim_us=lambda: 0.0),
                   SimpleNamespace(load_sim_us=lambda: 0.0)]
        loads = [0.0, 0.0]
        for i, w in enumerate(workers):
            w.load_sim_us = lambda i=i: loads[i]
        a, b = ("kernA",), ("kernB",)
        assert policy.select(_stub_batch(a), workers) == 0  # least loaded
        loads[0] = 100.0
        assert policy.select(_stub_batch(b), workers) == 1  # new key: by load
        loads[1] = 500.0
        # Repeats stay home even though loads inverted.
        assert policy.select(_stub_batch(a), workers) == 0
        assert policy.select(_stub_batch(b), workers) == 1
        # Eager work (no kernel) falls back to least-loaded.
        assert policy.select(_stub_batch(None), workers) == 0
        policy.reset()
        loads[0], loads[1] = 10.0, 0.0
        assert policy.select(_stub_batch(a), workers) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy("random")


class TestBatcher:
    def _items(self, keys):
        out = []
        for k in keys:
            launch = None
            if k is not None:
                launch = SimpleNamespace(batch_key=(k, "grid"),
                                         affinity_key=(k,), name=k)
            out.append(WorkItem(
                request=Request(workload=str(k)),
                kind="compiled" if k is not None else "eager",
                launch=launch, runner=None if k is not None else (lambda d: None)))
        return out

    def test_groups_by_key_preserving_fifo_head_order(self):
        batches = DynamicBatcher(max_batch=8).form(
            self._items(["a", "b", "a", "b", "a"]))
        assert [[i.request.workload for i in b.items] for b in batches] == \
            [["a", "a", "a"], ["b", "b"]]

    def test_max_batch_splits_groups(self):
        batches = DynamicBatcher(max_batch=2).form(self._items(["a"] * 5))
        assert [b.size for b in batches] == [2, 2, 1]

    def test_eager_work_never_coalesces(self):
        batches = DynamicBatcher(max_batch=8).form(
            self._items([None, None, "a", "a"]))
        assert [b.size for b in batches] == [1, 1, 2]

    def test_disabled_batcher_is_fifo_singletons(self):
        batches = DynamicBatcher(max_batch=8, enabled=False).form(
            self._items(["a", "a", "b"]))
        assert [b.size for b in batches] == [1, 1, 1]


class TestSubmissionQueue:
    def test_watermark_rejects_with_retry_after(self):
        q = SubmissionQueue(capacity=8, high_watermark=2)
        q.submit(Request(workload="saxpy"))
        q.submit(Request(workload="saxpy"))
        with pytest.raises(Backpressure) as exc:
            q.submit(Request(workload="saxpy"))
        assert exc.value.retry_after_s > 0
        assert exc.value.depth == 2
        # Draining reopens admission.
        assert len(q.take(max_items=2)) == 2
        q.submit(Request(workload="saxpy"))

    def test_blocking_submit_waits_for_space(self):
        q = SubmissionQueue(capacity=2, high_watermark=1)
        q.submit(Request(workload="a"))
        done = []

        def blocked():
            q.submit(Request(workload="b"), block=True)
            done.append(True)

        t = threading.Thread(target=blocked)
        t.start()
        t.join(0.05)
        assert not done  # still parked on the watermark
        q.take()
        t.join(2.0)
        assert done

    def test_take_returns_empty_only_when_closed(self):
        q = SubmissionQueue(capacity=4)
        assert q.take(timeout=0.01) == []
        q.submit(Request(workload="a"))
        q.close()
        assert len(q.take()) == 1
        assert q.take() == []


def _sequential_cluster(**kwargs) -> ServeCluster:
    """A cluster whose threads exist but whose dispatch is deterministic
    enough for unit assertions (single worker unless stated)."""
    defaults = dict(num_devices=1, batching=False, queue_capacity=64)
    defaults.update(kwargs)
    return ServeCluster(**defaults)


class TestClusterExecution:
    def test_single_request_roundtrip(self):
        with _sequential_cluster() as cluster:
            req = cluster.submit("saxpy", {"n": 128, "seed": 5})
            assert req.wait(30.0)
            assert req.status is RequestStatus.DONE
            assert req.kernel_sim_us > 0
            assert req.overhead_sim_us == \
                cluster.devices[0].machine.launch_overhead_us
            assert req.dram_bytes > 0
            assert req.result is not None

    def test_unknown_workload_fails_cleanly(self):
        with _sequential_cluster() as cluster:
            req = cluster.submit("nope")
            assert req.wait(10.0)
            assert req.status is RequestStatus.FAILED
            assert "unknown serve workload" in req.error

    def test_batched_overhead_is_one_launch_plus_pipelined_gaps(self):
        """N coalesced requests: 1 full overhead + (N-1) pipelined gaps."""
        n = 4
        cluster = ServeCluster(num_devices=1, batching=True, max_batch=8)
        worker = cluster.workers[0]
        machine = worker.device.machine
        reqs = [Request(workload="saxpy", params={"n": 128, "seed": 9})
                for _ in range(n)]
        items = [cluster._resolve(r) for r in reqs]
        assert all(i is not None for i in items)
        batches = cluster.batcher.form(items)
        assert len(batches) == 1 and batches[0].size == n
        clock0 = worker.sim_clock_us
        worker._execute(batches[0])
        assert all(r.status is RequestStatus.DONE for r in reqs)
        overheads = [r.overhead_sim_us for r in reqs]
        assert overheads[0] == machine.launch_overhead_us
        assert overheads[1:] == [machine.pipelined_launch_us] * (n - 1)
        total = sum(r.service_sim_us for r in reqs)
        assert worker.sim_clock_us - clock0 == pytest.approx(total)
        expected_overhead = machine.launch_overhead_us + \
            (n - 1) * machine.pipelined_launch_us
        assert sum(overheads) == pytest.approx(expected_overhead)
        # vs. unbatched: N full overheads.
        assert sum(overheads) < n * machine.launch_overhead_us

    def test_batch_members_share_sim_timeline_sequentially(self):
        cluster = ServeCluster(num_devices=1, batching=True, max_batch=4)
        worker = cluster.workers[0]
        reqs = [Request(workload="scale", params={"n": 128, "seed": i},
                        arrival_sim_us=0.0) for i in range(3)]
        items = [cluster._resolve(r) for r in reqs]
        worker._execute(cluster.batcher.form(items)[0])
        starts = [r.start_sim_us for r in reqs]
        assert starts == sorted(starts)
        assert starts[1] == pytest.approx(
            starts[0] + reqs[0].service_sim_us)

    def test_eager_fig5_request_served(self):
        with _sequential_cluster() as cluster:
            req = cluster.submit("fig5.prefix")
            assert req.wait(120.0)
            assert req.status is RequestStatus.DONE, req.error
            assert req.launches > 1  # prefix sum enqueues several kernels
            assert req.kernel_sim_us > 0


def _run_trace(policy, batching, trace, devices=2):
    with ServeCluster(num_devices=devices, policy=policy,
                      batching=batching, queue_capacity=1024) as cluster:
        for entry in trace:
            cluster.submit(entry["workload"], entry["params"])
        assert cluster.drain(timeout=120.0)
        report = cluster.report()
    return report


class TestStressDeterminism:
    """Totals must not depend on thread interleaving."""

    @pytest.fixture(scope="class")
    def trace(self):
        return build_trace(seed=11, n_requests=48, mix="compiled",
                           sim_rate_rps=25000.0)

    def test_totals_identical_across_interleavings(self, trace):
        reports = [_run_trace("round-robin", False, trace)
                   for _ in range(3)]
        totals = [
            (r["requests"]["done"],
             round(r["sim"]["kernel_us"], 6),
             r["sim"]["dram_bytes"],
             r["kernel_cache"]["hits"],
             r["kernel_cache"]["misses"])
            for r in reports
        ]
        assert totals[0][0] == len(trace)
        assert totals.count(totals[0]) == len(totals)

    def test_affinity_beats_round_robin_hit_ratio(self, trace):
        rr = _run_trace("round-robin", False, trace)
        aff = _run_trace("cache-affinity", False, trace)
        assert aff["requests"]["done"] == rr["requests"]["done"] == len(trace)
        assert aff["kernel_cache"]["hit_rate"] > \
            rr["kernel_cache"]["hit_rate"]

    def test_batching_amortizes_overhead_vs_unbatched_fifo(self, trace):
        unbatched = _run_trace("fifo", False, trace)
        batched = _run_trace("fifo", True, trace)
        ratio = unbatched["sim"]["launch_overhead_us"] / \
            batched["sim"]["launch_overhead_us"]
        assert ratio >= 1.5


class TestKernelCacheThreadSafety:
    def test_concurrent_lookups_single_compile(self):
        cache = KernelCache()
        wl = get_workload("scale")
        launch = wl.make({"n": 128, "seed": 0})
        errors = []

        def worker():
            try:
                for _ in range(25):
                    kernel, _ = cache.lookup(launch.body, launch.name,
                                             launch.sig,
                                             launch.scalar_params)
                    assert kernel is not None
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 8 * 25 - 1

    def test_contains_has_no_side_effects(self):
        cache = KernelCache()
        wl = get_workload("saxpy")
        launch = wl.make({"n": 128, "seed": 0})
        assert not cache.contains(launch.body, launch.name, launch.sig,
                                  launch.scalar_params)
        assert cache.stats.lookups == 0
        cache.lookup(launch.body, launch.name, launch.sig,
                     launch.scalar_params)
        assert cache.contains(launch.body, launch.name, launch.sig,
                              launch.scalar_params)


class TestDeviceReset:
    def test_reset_clears_counters_and_keeps_cache(self):
        device = Device()
        wl = get_workload("saxpy")
        launch = wl.make({"n": 128, "seed": 1})
        surfaces, scalars = launch.bind(device)
        kern = device.compile(launch.body, launch.name, launch.sig,
                              launch.scalar_params)
        device.run_compiled(kern, launch.grid, surfaces, scalars=scalars)
        assert device.runs and device.profile.threads_run > 0
        assert device.total_time_us > 0
        cached_len = len(device.kernel_cache)
        device.reset()
        assert device.runs == [] and device.surfaces == []
        assert device.total_time_us == 0.0
        assert device.profile.threads_run == 0
        assert device.profile.compile_cache_misses == 0
        assert len(device.kernel_cache) == cached_len
        assert device.kernel_cache.stats.lookups == 0
        # Recompiling after reset is a hit: the cache survived.
        device.compile(launch.body, launch.name, launch.sig,
                       launch.scalar_params)
        assert device.kernel_cache.stats.hits == 1

    def test_reset_clear_cache_drops_programs(self):
        device = Device()
        wl = get_workload("scale")
        launch = wl.make({"n": 128, "seed": 1})
        device.compile(launch.body, launch.name, launch.sig,
                       launch.scalar_params)
        device.reset(clear_cache=True)
        assert len(device.kernel_cache) == 0


class TestMsgGeometry:
    def test_split_counts(self):
        assert geom.media_block_messages(32, 8) == 1
        assert geom.media_block_messages(33, 8) == 2
        assert geom.media_block_messages(32, 9) == 2
        assert geom.oword_block_messages(128) == 1
        assert geom.oword_block_messages(129) == 2
        assert geom.scatter_messages(16) == 1
        assert geom.scatter_messages(17) == 2

    def test_both_paths_import_the_shared_geometry(self):
        from repro.cm import intrinsics
        from repro.sim import batch
        assert intrinsics.media_block_messages is geom.media_block_messages
        assert batch.oword_block_messages is geom.oword_block_messages
        assert batch.scatter_messages is geom.scatter_messages


class TestRunOn:
    def test_delta_accounting_on_shared_device(self):
        from repro.workloads import prefix_sum
        device = Device()
        v = prefix_sum.make_input(1 << 10)
        first = run_on(device, "p1", lambda d: prefix_sum.run_cm(d, v))
        second = run_on(device, "p2", lambda d: prefix_sum.run_cm(d, v))
        assert first.launches == second.launches > 0
        assert second.kernel_time_us == pytest.approx(
            sum(r.kernel_time_us
                for r in device.runs[first.launches:]))
        # Each delta charges one full overhead + pipelined gaps.
        m = device.machine
        assert first.launch_overhead_us == pytest.approx(
            m.launch_overhead_us + (first.launches - 1) * m.pipelined_launch_us)


class TestRequestMath:
    def test_percentiles_nearest_rank(self):
        p = percentiles(range(1, 101))
        assert p["p50"] == 50 and p["p95"] == 95 and p["p99"] == 99
        assert p["max"] == 100
        empty = percentiles([])
        assert empty["p50"] == 0.0

    def test_sim_latency_composition(self):
        req = Request(workload="saxpy", arrival_sim_us=100.0)
        req.start_sim_us = 130.0
        req.kernel_sim_us = 5.0
        req.overhead_sim_us = 6.0
        req.launches = 1
        assert req.wait_sim_us == 30.0
        assert req.service_sim_us == 11.0
        assert req.latency_sim_us == 41.0


class TestLoadgen:
    def test_seeded_trace_is_reproducible(self):
        t1 = build_trace(3, 20, "compiled", 25000.0)
        t2 = build_trace(3, 20, "compiled", 25000.0)
        assert t1 == t2

    def test_small_run_completes_clean(self):
        report = run_loadgen(devices=2, requests=30, seed=4,
                             policy="least-loaded", rate_rps=5000.0)
        lg = report["loadgen"]
        assert lg["dropped"] == 0 and lg["failed"] == 0
        assert report["requests"]["done"] == 30
        for key in ("p50", "p95", "p99"):
            assert key in report["latency_wall_ms"]
            assert key in report["latency_sim_us"]
        assert len(report["per_device"]) == 2
        assert sum(d["requests"] for d in report["per_device"]) == 30
