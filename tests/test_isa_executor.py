"""Functional executor: ALU, predication, and memory messages."""

import numpy as np
import pytest

from repro.isa.dtypes import D, F, UB, UD
from repro.isa.executor import ExecutionError, FunctionalExecutor
from repro.isa.grf import RegOperand
from repro.isa.instructions import (
    CondMod, FlagOperand, Immediate, Instruction, MathFn, MessageDesc,
    MsgKind, Opcode, Predicate,
)
from repro.isa.regions import Region
from repro.memory.surfaces import BufferSurface, Image2DSurface


def _packed(n):
    w = min(n, 8)
    return Region(w, w, 1)


def _load_reg(ex, reg, values, dtype):
    ex.grf.write_bytes(reg * 32, np.asarray(values, dtype=dtype.np_dtype))


class TestALU:
    def test_add_immediate(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, range(8), D)
        ex.execute(Instruction(
            Opcode.ADD, 8, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, _packed(8)), Immediate(10, D)]))
        assert ex.grf.dump_reg(2, D)[:8].tolist() == list(range(10, 18))

    def test_mov_converts_ub_to_float(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [0, 1, 2, 3], UB)
        ex.execute(Instruction(
            Opcode.MOV, 4, RegOperand(2, 0, F),
            [RegOperand(1, 0, UB, _packed(4))]))
        assert ex.grf.dump_reg(2, F)[:4].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_mad(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [1.0] * 4, F)
        _load_reg(ex, 2, [2.0] * 4, F)
        _load_reg(ex, 3, [3.0] * 4, F)
        ex.execute(Instruction(
            Opcode.MAD, 4, RegOperand(4, 0, F),
            [RegOperand(1, 0, F, _packed(4)), RegOperand(2, 0, F, _packed(4)),
             RegOperand(3, 0, F, _packed(4))]))
        assert ex.grf.dump_reg(4, F)[:4].tolist() == [7.0] * 4

    def test_math_sqrt(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [4.0, 9.0, 16.0, 25.0], F)
        ex.execute(Instruction(
            Opcode.MATH, 4, RegOperand(2, 0, F),
            [RegOperand(1, 0, F, _packed(4))], math_fn=MathFn.SQRT))
        assert ex.grf.dump_reg(2, F)[:4].tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_missing_dst_raises(self):
        ex = FunctionalExecutor()
        with pytest.raises(ExecutionError):
            ex.execute(Instruction(Opcode.ADD, 4, None,
                                   [Immediate(1, D), Immediate(2, D)]))

    def test_saturation(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [200, 100, 10, 0], UB)
        ex.execute(Instruction(
            Opcode.ADD, 4, RegOperand(2, 0, UB),
            [RegOperand(1, 0, UB, _packed(4)), Immediate(100, D)],
            sat=True))
        assert ex.grf.dump_reg(2, UB)[:4].tolist() == [255, 200, 110, 100]


class TestCmpSel:
    def test_cmp_sets_flag(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [1, 5, 3, 7], D)
        ex.execute(Instruction(
            Opcode.CMP, 4, None,
            [RegOperand(1, 0, D, _packed(4)), Immediate(4, D)],
            cond_mod=CondMod.GT, flag=FlagOperand(0)))
        assert ex.flags[0][:4].tolist() == [False, True, False, True]

    def test_predicated_sel(self):
        ex = FunctionalExecutor()
        _load_reg(ex, 1, [1, 5, 3, 7], D)
        _load_reg(ex, 2, [10, 20, 30, 40], D)
        ex.execute(Instruction(
            Opcode.CMP, 4, None,
            [RegOperand(1, 0, D, _packed(4)), Immediate(4, D)],
            cond_mod=CondMod.GT, flag=FlagOperand(0)))
        ex.execute(Instruction(
            Opcode.SEL, 4, RegOperand(3, 0, D),
            [RegOperand(1, 0, D, _packed(4)),
             RegOperand(2, 0, D, _packed(4))],
            pred=Predicate(FlagOperand(0))))
        assert ex.grf.dump_reg(3, D)[:4].tolist() == [10, 5, 30, 7]

    def test_predicated_mov_writes_active_lanes_only(self):
        ex = FunctionalExecutor()
        ex.flags[0] = np.asarray([True, False] * 16)
        _load_reg(ex, 1, [9] * 8, D)
        _load_reg(ex, 2, [0] * 8, D)
        ex.execute(Instruction(
            Opcode.MOV, 8, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, _packed(8))],
            pred=Predicate(FlagOperand(0))))
        assert ex.grf.dump_reg(2, D)[:8].tolist() == [9, 0] * 4

    def test_inverted_predicate(self):
        ex = FunctionalExecutor()
        ex.flags[0] = np.asarray([True, False] * 16)
        _load_reg(ex, 1, [9] * 8, D)
        ex.execute(Instruction(
            Opcode.MOV, 8, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, _packed(8))],
            pred=Predicate(FlagOperand(0), invert=True)))
        assert ex.grf.dump_reg(2, D)[:8].tolist() == [0, 9] * 4


class TestSends:
    def test_oword_read_write(self):
        buf = BufferSurface(np.arange(32, dtype=np.uint32))
        ex = FunctionalExecutor({0: buf})
        ex.execute(Instruction(Opcode.SEND, msg=MessageDesc(
            kind=MsgKind.OWORD_BLOCK_READ, surface=0,
            addr0=Immediate(16, UD), payload_reg=2, payload_bytes=32)))
        assert ex.grf.dump_reg(2, UD)[:8].tolist() == list(range(4, 12))
        ex.execute(Instruction(Opcode.SEND, msg=MessageDesc(
            kind=MsgKind.OWORD_BLOCK_WRITE, surface=0,
            addr0=Immediate(0, UD), payload_reg=2, payload_bytes=32)))
        assert buf.to_numpy()[:8].tolist() == list(range(4, 12))

    def test_media_block_read(self):
        img = Image2DSurface(np.arange(64, dtype=np.uint8).reshape(8, 8))
        ex = FunctionalExecutor({1: img})
        ex.execute(Instruction(Opcode.SEND, msg=MessageDesc(
            kind=MsgKind.MEDIA_BLOCK_READ, surface=1,
            block_width=4, block_height=2,
            addr0=Immediate(2, UD), addr1=Immediate(1, UD),
            payload_reg=3)))
        out = ex.grf.read_bytes(3 * 32, 8)
        assert out.tolist() == [10, 11, 12, 13, 18, 19, 20, 21]

    def test_gather_scatter_element_offsets(self):
        buf = BufferSurface(np.arange(16, dtype=np.float32))
        ex = FunctionalExecutor({0: buf})
        _load_reg(ex, 1, [3, 1, 7, 0], UD)
        ex.execute(Instruction(Opcode.SEND, exec_size=4, msg=MessageDesc(
            kind=MsgKind.GATHER, surface=0, addr_reg=1, payload_reg=2,
            elem_dtype=F)))
        assert ex.grf.dump_reg(2, F)[:4].tolist() == [3.0, 1.0, 7.0, 0.0]
        ex.execute(Instruction(Opcode.SEND, exec_size=4, msg=MessageDesc(
            kind=MsgKind.SCATTER, surface=0, addr_reg=1, payload_reg=2,
            elem_dtype=F, addr0=Immediate(8, UD))))
        host = buf.to_numpy()
        assert host[11] == 3.0 and host[9] == 1.0 and host[8] == 0.0

    def test_unbound_surface_raises(self):
        ex = FunctionalExecutor()
        with pytest.raises(ExecutionError):
            ex.execute(Instruction(Opcode.SEND, msg=MessageDesc(
                kind=MsgKind.OWORD_BLOCK_READ, surface=9,
                addr0=Immediate(0, UD), payload_reg=1, payload_bytes=16)))
