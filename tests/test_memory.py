"""Surfaces, SLM banking, atomics, and cache-line tracking."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa.dtypes import F, UD
from repro.memory.slm import (
    ATOMIC_OPS_PER_CYCLE, NUM_BANKS, SharedLocalMemory, bank_conflict_cycles,
)
from repro.memory.surfaces import BufferSurface, Image2DSurface
from repro.memory.traffic import (
    block2d_cache_lines, block_cache_lines, unique_cache_lines,
)


class TestBufferSurface:
    def test_linear_roundtrip(self):
        buf = BufferSurface.allocate(64)
        buf.write_linear(16, np.arange(4, dtype=np.uint32))
        assert buf.read_linear(16, 16).view(np.uint32).tolist() == [0, 1, 2, 3]

    def test_out_of_bounds(self):
        buf = BufferSurface.allocate(64)
        with pytest.raises(IndexError):
            buf.read_linear(60, 16)

    def test_gather_with_mask(self):
        buf = BufferSurface(np.arange(16, dtype=np.float32))
        out = buf.gather(np.asarray([0, 4, 8, 12]), F,
                         mask=np.asarray([True, False, True, False]))
        assert out.tolist() == [0.0, 0.0, 2.0, 0.0]

    def test_scatter_duplicate_offsets_last_wins(self):
        buf = BufferSurface(np.zeros(4, dtype=np.uint32))
        buf.scatter(np.asarray([0, 0]), np.asarray([1, 2], dtype=np.uint32))
        assert buf.to_numpy()[0] == 2

    def test_atomic_add_returns_old(self):
        buf = BufferSurface(np.zeros(4, dtype=np.uint32))
        old = buf.atomic("add", np.asarray([0, 0, 4]),
                         np.asarray([5, 7, 3], dtype=np.uint32), UD)
        assert old.tolist() == [0, 5, 0]
        assert buf.to_numpy()[:2].tolist() == [12, 3]

    def test_atomic_inc_serializes_same_address(self):
        buf = BufferSurface(np.zeros(1, dtype=np.uint32))
        old = buf.atomic("inc", np.zeros(16, dtype=np.int64), None, UD)
        assert sorted(old.tolist()) == list(range(16))
        assert buf.to_numpy()[0] == 16

    def test_atomic_ops_semantics(self):
        buf = BufferSurface(np.asarray([10], dtype=np.uint32))
        assert buf.atomic("max", [0], np.asarray([7], np.uint32), UD)[0] == 10
        assert buf.to_numpy()[0] == 10
        buf.atomic("max", [0], np.asarray([20], np.uint32), UD)
        assert buf.to_numpy()[0] == 20
        buf.atomic("xchg", [0], np.asarray([3], np.uint32), UD)
        assert buf.to_numpy()[0] == 3

    def test_atomic_cmpxchg(self):
        buf = BufferSurface(np.asarray([5, 5], dtype=np.uint32))
        old = buf.atomic_cmpxchg(
            np.asarray([0, 4]), np.asarray([5, 4], np.uint32),
            np.asarray([9, 9], np.uint32), UD)
        assert old.tolist() == [5, 5]
        assert buf.to_numpy().tolist() == [9, 5]

    def test_misaligned_atomic_rejected(self):
        buf = BufferSurface(np.zeros(4, dtype=np.uint32))
        with pytest.raises(ValueError):
            buf.atomic("inc", [2], None, UD)


class TestImage2D:
    def test_block_read_clamps_edges(self):
        img = Image2DSurface(np.arange(16, dtype=np.uint8).reshape(4, 4))
        block = img.read_block(-1, -1, 3, 2)
        assert block[0].tolist() == [0, 0, 1]
        assert block[1].tolist() == [0, 0, 1]
        block = img.read_block(3, 3, 2, 2)
        assert block[0].tolist() == [15, 15]

    def test_block_write_drops_oob(self):
        img = Image2DSurface(np.zeros((4, 4), dtype=np.uint8))
        img.write_block(3, 3, 2, 2, np.full((2, 2), 9, dtype=np.uint8))
        host = img.to_numpy()
        assert host[3, 3] == 9 and host.sum() == 9

    def test_pixel_access_multibyte(self):
        data = np.arange(48, dtype=np.uint8).reshape(4, 12)
        img = Image2DSurface(data, bytes_per_pixel=3)
        assert img.width == 4 and img.pitch == 12
        px = img.read_pixels(np.asarray([1]), np.asarray([2]))
        assert px[0].tolist() == [27, 28, 29]

    def test_write_pixels(self):
        img = Image2DSurface(np.zeros((2, 6), dtype=np.uint8), 3)
        img.write_pixels(np.asarray([1]), np.asarray([0]),
                         np.asarray([[7, 8, 9]], dtype=np.uint8))
        assert img.to_numpy()[0, 3:6].tolist() == [7, 8, 9]

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            Image2DSurface(np.zeros((2, 5), dtype=np.uint8), 3)


class TestLineTracking:
    def test_first_touch_counts_once(self):
        buf = BufferSurface.allocate(256)
        total, new = buf.mark_lines_range(0, 128)
        assert (total, new) == (2, 2)
        total, new = buf.mark_lines_range(0, 128)
        assert (total, new) == (2, 0)
        buf.reset_line_tracking()
        assert buf.mark_lines_range(0, 64) == (1, 1)

    def test_scattered_lines(self):
        buf = BufferSurface.allocate(1024)
        offs = np.asarray([0, 4, 64, 512])
        total, new = buf.mark_lines_offsets(offs, 4)
        assert (total, new) == (3, 3)

    def test_block2d_lines_per_row(self):
        img = Image2DSurface(np.zeros((8, 256), dtype=np.uint8))
        total, new = img.mark_lines_block2d(0, 0, 32, 4, 256)
        assert total == 4 and new == 4


class TestSLM:
    def test_capacity_limit(self):
        with pytest.raises(ValueError):
            SharedLocalMemory(128 * 1024)

    def test_conflict_free_consecutive(self):
        offs = np.arange(16) * 4
        assert bank_conflict_cycles(offs) == 1

    def test_same_word_broadcast_read(self):
        offs = np.zeros(16, dtype=np.int64)
        assert bank_conflict_cycles(offs) == 1

    def test_same_word_atomic_serializes(self):
        offs = np.zeros(16, dtype=np.int64)
        cycles = bank_conflict_cycles(offs, same_address_broadcast=False,
                                      ops_per_cycle=ATOMIC_OPS_PER_CYCLE)
        assert cycles == 16 / ATOMIC_OPS_PER_CYCLE

    def test_two_way_bank_conflict(self):
        # Stride of NUM_BANKS words: every lane hits bank 0.
        offs = np.arange(4) * NUM_BANKS * 4
        assert bank_conflict_cycles(offs) == 4

    def test_padding_removes_conflicts(self):
        # 17-word stride spreads 16 lanes over all banks (transpose trick).
        offs = np.arange(16) * 17 * 4
        assert bank_conflict_cycles(offs) == 1


class TestTrafficHelpers:
    def test_unique_cache_lines_straddle(self):
        assert unique_cache_lines(np.asarray([62]), 4) == 2

    def test_block_lines(self):
        assert block_cache_lines(1) == 1
        assert block_cache_lines(65) == 2

    def test_block2d_lines(self):
        assert block2d_cache_lines(32, 8, 1024) == 8

    @given(st.lists(st.integers(0, 4000), min_size=1, max_size=32))
    def test_unique_lines_bounded(self, offs):
        n = unique_cache_lines(np.asarray(offs), 4)
        assert 1 <= n <= 2 * len(offs)
