"""CM memory intrinsics and kernel launch plumbing."""

import numpy as np
import pytest

from repro import Device, cm
from repro.memory.slm import SharedLocalMemory


def run_thread(fn, device=None, grid=(1,), args=()):
    device = device or Device()
    run = device.run_cm(fn, grid=grid, args=args)
    return device, run


class TestBlockIO:
    def test_oword_block_roundtrip(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.uint32))
        dst = dev.buffer(np.zeros(32, dtype=np.uint32))

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 16)
            cm.read(src, 16, v)
            cm.write(dst, 32, v)

        run_thread(kernel, dev)
        assert dst.to_numpy()[8:24].tolist() == list(range(4, 20))

    def test_oword_alignment_enforced(self):
        dev = Device()
        src = dev.buffer(np.zeros(32, dtype=np.uint32))

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 4)
            cm.read(src, 4, v)

        with pytest.raises(ValueError):
            run_thread(kernel, dev)

    def test_dword_aligned_variant(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.uint32))
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 4)
            cm.read(src, 4, v, aligned=False)
            out["v"] = v.to_numpy()

        run_thread(kernel, dev)
        assert out["v"].tolist() == [1, 2, 3, 4]

    def test_media_block_roundtrip(self):
        dev = Device()
        img = dev.image2d(np.arange(64, dtype=np.uint8).reshape(8, 8))
        dst = dev.image2d(np.zeros((8, 8), dtype=np.uint8))

        @cm.cm_kernel
        def kernel():
            m = cm.matrix(cm.uchar, 2, 4)
            cm.read(img, 2, 1, m)
            cm.write(dst, 0, 0, m)

        run_thread(kernel, dev)
        assert dst.to_numpy()[0, :4].tolist() == [10, 11, 12, 13]
        assert dst.to_numpy()[1, :4].tolist() == [18, 19, 20, 21]

    def test_block_read_records_event(self):
        dev = Device()
        src = dev.buffer(np.zeros(64, dtype=np.uint32))

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 16)
            cm.read(src, 0, v)

        _, run = run_thread(kernel, dev)
        t = run.timing
        assert t.messages == 1
        assert t.global_read_bytes == 64


class TestScattered:
    def test_gather_scatter(self):
        dev = Device()
        src = dev.buffer(np.arange(32, dtype=np.float32))
        dst = dev.buffer(np.zeros(32, dtype=np.float32))

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.float32, 4)
            cm.read_scattered(src, 4, [0, 2, 4, 6], v)
            cm.write_scattered(dst, 0, [1, 3, 5, 7], v)

        run_thread(kernel, dev)
        host = dst.to_numpy()
        assert host[1] == 4.0 and host[3] == 6.0 and host[7] == 10.0

    def test_gather_offsets_from_vector(self):
        dev = Device()
        src = dev.buffer(np.arange(16, dtype=np.uint32))

        out = {}

        @cm.cm_kernel
        def kernel():
            idx = cm.vector(cm.uint, 4, [3, 1, 0, 2])
            v = cm.vector(cm.uint, 4)
            cm.read_scattered(src, 0, idx, v)
            out["v"] = v.to_numpy()

        run_thread(kernel, dev)
        assert out["v"].tolist() == [3, 1, 0, 2]


class TestAtomics:
    def test_atomic_add_returns_old(self):
        dev = Device()
        hist = dev.buffer(np.zeros(8, dtype=np.uint32))
        out = {}

        @cm.cm_kernel
        def kernel():
            offs = cm.vector(cm.uint, 8, np.arange(8))
            ones = cm.vector(cm.uint, 8, 2)
            old = cm.atomic("add", hist, offs, src=ones)
            out["old"] = old.to_numpy()

        run_thread(kernel, dev)
        assert out["old"].tolist() == [0] * 8
        assert hist.to_numpy().tolist() == [2] * 8

    def test_atomic_inc_contention_recorded(self):
        dev = Device()
        hist = dev.buffer(np.zeros(4, dtype=np.uint32))

        @cm.cm_kernel
        def kernel():
            offs = cm.vector(cm.uint, 8, 0)  # all lanes hit element 0
            cm.atomic("inc", hist, offs)

        _, run = run_thread(kernel, dev)
        assert hist.to_numpy()[0] == 8
        assert run.timing.atomic_cycles > 0


class TestSLMIntrinsics:
    def test_slm_read_write(self):
        dev = Device()
        slm = SharedLocalMemory(256)
        out = {}

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 4, [5, 6, 7, 8])
            cm.slm_write(slm, [0, 1, 2, 3], v)
            r = cm.vector(cm.uint, 4)
            cm.slm_read(slm, [3, 2, 1, 0], r)
            out["r"] = r.to_numpy()

        run_thread(kernel, dev)
        assert out["r"].tolist() == [8, 7, 6, 5]

    def test_slm_atomic(self):
        dev = Device()
        slm = SharedLocalMemory(64)

        @cm.cm_kernel
        def kernel():
            offs = cm.vector(cm.uint, 4, [0, 0, 1, 1])
            cm.slm_atomic("inc", slm, offs)

        run_thread(kernel, dev)
        assert slm.to_numpy()[:8].view(np.uint32)[:2].tolist() == [2, 2]

    def test_slm_rejected_by_global_read(self):
        slm = SharedLocalMemory(64)
        dev = Device()

        @cm.cm_kernel
        def kernel():
            v = cm.vector(cm.uint, 4)
            cm.read(slm, 0, v)

        with pytest.raises(TypeError):
            run_thread(kernel, dev)


class TestKernelLaunch:
    def test_thread_ids(self):
        dev = Device()
        seen = []

        @cm.cm_kernel
        def kernel():
            seen.append((cm.thread_x(), cm.thread_y()))

        dev.run_cm(kernel, grid=(2, 3))
        assert len(seen) == 6
        assert (1, 2) in seen and (0, 0) in seen

    def test_direct_call_rejected(self):
        @cm.cm_kernel
        def kernel():
            pass

        with pytest.raises(RuntimeError):
            kernel()

    def test_events_accumulate_per_thread(self):
        dev = Device()
        buf = dev.buffer(np.zeros(64, dtype=np.float32))

        @cm.cm_kernel
        def kernel():
            t = cm.thread_x()
            v = cm.vector(cm.float32, 16, 1.0)
            v2 = v * 2.0
            cm.write(buf, t * 64, v2)

        run = dev.run_cm(kernel, grid=(4,))
        assert run.timing.num_threads == 4
        assert run.timing.total_instructions >= 4 * 2
        assert buf.to_numpy().tolist() == [2.0] * 64
