"""The sharded serving layer: pool, lanes, routing, recovery, scaling.

Covers the ISSUE 8 checklist: the shared-memory payload pool and its
pickle fallback, priority-lane/EDF ordering, the bounded retry-after
default on a fresh queue, cache-affinity routing stickiness, trace
propagation across the process boundary, shard-death recovery with no
lost or double-completed request, autoscaler decisions, and
single-process vs sharded result/timing equivalence.
"""

import time

import numpy as np
import pytest

from repro.serve import (
    AutoscalePolicy, Autoscaler, PriorityLaneQueue, Request, RequestStatus,
    ServeCluster, ShardedCluster, SubmissionQueue, SurfacePool,
)
from repro.serve.loadgen import run_loadgen
from repro.serve.queue import DEFAULT_RETRY_S, MAX_RETRY_S, MIN_RETRY_S


class TestSurfacePool:
    def test_put_map_roundtrip_and_release(self):
        pool = SurfacePool(slots=2, slot_bytes=1 << 12)
        try:
            x = np.arange(16, dtype=np.float32)
            y = np.full(8, 3.0, dtype=np.float32)
            ref = pool.put({"x": x, "y": y})
            assert ref is not None
            views = pool.map(ref)
            assert np.array_equal(views["x"], x)
            assert np.array_equal(views["y"], y)
            # Views share the slab: a write on one side is seen via map.
            views["y"][0] = 42.0
            assert pool.map(ref)["y"][0] == 42.0
            assert pool.stats()["in_use"] == 1
            pool.release(ref)
            assert pool.stats()["in_use"] == 0
            assert pool.stats()["releases"] == 1
            pool.release(ref)  # double release is a no-op
            assert pool.stats()["releases"] == 1
        finally:
            pool.close()

    def test_oversize_and_exhausted_fall_back(self):
        pool = SurfacePool(slots=1, slot_bytes=256)
        try:
            big = np.zeros(1024, dtype=np.float32)
            assert pool.put({"v": big}) is None
            assert pool.stats()["fallbacks"] == 1
            small = np.zeros(4, dtype=np.float32)
            ref = pool.put({"v": small})
            assert ref is not None
            assert pool.put({"v": small}) is None  # no free slot
            assert pool.stats()["fallbacks"] == 2
            pool.release(ref)
            assert pool.put({"v": small}) is not None
        finally:
            pool.close()

    def test_attached_pool_maps_but_never_allocates(self):
        pool = SurfacePool(slots=2, slot_bytes=1 << 10)
        try:
            ref = pool.put({"v": np.arange(8, dtype=np.float32)})
            other = SurfacePool.attach(pool.name, pool.slots,
                                       pool.slot_bytes)
            try:
                assert np.array_equal(other.map(ref)["v"],
                                      np.arange(8, dtype=np.float32))
                with pytest.raises(RuntimeError):
                    other.put({"v": np.zeros(4, dtype=np.float32)})
            finally:
                other.close()
        finally:
            pool.close()


class TestPriorityLaneQueue:
    def _req(self, lane, deadline_s=None):
        req = Request(workload="w")
        req.lane = lane
        if deadline_s is not None:
            req.deadline_wall_s = deadline_s
        return req

    def test_interactive_drains_strictly_before_batch(self):
        q = PriorityLaneQueue(capacity=16)
        q.submit(self._req("batch"))
        q.submit(self._req("batch"))
        q.submit(self._req("interactive"))
        taken = q.take(max_items=3)
        assert [r.lane for r in taken] == ["interactive", "batch", "batch"]

    def test_edf_within_lane_no_deadline_last_fifo(self):
        q = PriorityLaneQueue(capacity=16)
        late = self._req("interactive", deadline_s=200.0)
        none1 = self._req("interactive")
        soon = self._req("interactive", deadline_s=100.0)
        none2 = self._req("interactive")
        for r in (late, none1, soon, none2):
            q.submit(r)
        assert q.take(max_items=4) == [soon, late, none1, none2]

    def test_lane_depths_gauge(self):
        q = PriorityLaneQueue(capacity=16)
        q.submit(self._req("interactive"))
        q.submit(self._req("batch"))
        q.submit(self._req("batch"))
        assert q.lane_depths() == {"interactive": 1, "batch": 2}
        q.take(max_items=2)
        assert q.lane_depths() == {"interactive": 0, "batch": 1}


class TestRetryAfterDefault:
    def test_fresh_queue_hints_bounded_default_not_floor(self):
        q = SubmissionQueue(capacity=8)
        # Nothing taken yet: the drain rate is unmeasured, so the hint
        # must be the bounded default, not the 1 ms hot-loop floor.
        assert q.retry_after_s(1) == pytest.approx(DEFAULT_RETRY_S)
        assert q.retry_after_s(10 ** 6) == MAX_RETRY_S

    def test_hint_always_within_bounds(self):
        q = SubmissionQueue(capacity=8)
        for overflow in (1, 7, 10 ** 9):
            hint = q.retry_after_s(overflow)
            assert MIN_RETRY_S <= hint <= MAX_RETRY_S


class TestRouting:
    def test_route_key_excludes_seed_and_internal_params(self):
        k1 = ShardedCluster.route_key("sgemm", {"m": 8, "seed": 1})
        k2 = ShardedCluster.route_key("sgemm", {"m": 8, "seed": 2,
                                                "_origin_id": 7})
        k3 = ShardedCluster.route_key("sgemm", {"m": 16, "seed": 1})
        assert k1 == k2
        assert k1 != k3

    def test_route_key_order_independent(self):
        a = ShardedCluster.route_key("w", {"m": 8, "n": 4})
        b = ShardedCluster.route_key("w", {"n": 4, "m": 8})
        assert a == b


class TestAutoscalerDecide:
    def _scaler(self, **kw):
        defaults = dict(min_shards=1, max_shards=4, backlog_high=16.0,
                        backlog_low=2.0, burn_high=1.0, cooldown_s=1.0)
        defaults.update(kw)
        return Autoscaler(AutoscalePolicy(**defaults))

    def test_backlog_high_scales_up_to_cap(self):
        s = self._scaler()
        assert s.decide(0.0, 2, backlog=64, burn_rate=0.0) == 1
        assert s.decide(0.0, 4, backlog=640, burn_rate=0.0) == 0  # at max

    def test_burn_rate_scales_up_even_with_low_backlog(self):
        s = self._scaler()
        assert s.decide(0.0, 2, backlog=0, burn_rate=1.5) == 1

    def test_backlog_low_scales_down_to_floor(self):
        s = self._scaler()
        assert s.decide(0.0, 3, backlog=0, burn_rate=0.0) == -1
        assert s.decide(0.0, 1, backlog=0, burn_rate=0.0) == 0  # at min

    def test_cooldown_holds_between_actions(self):
        s = self._scaler()
        assert s.decide(0.0, 2, backlog=64, burn_rate=0.0) == 1
        s.note(0.0, "up", 2, 3, "test")
        assert s.decide(0.5, 3, backlog=64, burn_rate=0.0) == 0
        assert s.decide(1.5, 3, backlog=64, burn_rate=0.0) == 1

    def test_below_floor_restores_ignoring_cooldown(self):
        s = self._scaler(min_shards=2)
        s.note(0.0, "up", 1, 2, "test")
        assert s.decide(0.1, 1, backlog=0, burn_rate=0.0) == 1

    def test_events_recorded_in_snapshot(self):
        s = self._scaler()
        s.note(1.0, "up", 1, 2, "backlog")
        snap = s.snapshot()
        assert snap["actions"] == 1
        assert snap["events"][0]["action"] == "up"


def _submit_menu(cluster, n, lane="interactive"):
    menu = [("saxpy", {"n": 256}), ("saxpy", {"n": 512}),
            ("scale", {"n": 256}), ("sgemm", {"m": 16, "n": 16, "k": 8})]
    reqs = []
    for i in range(n):
        workload, params = menu[i % len(menu)]
        params = dict(params, seed=i)
        reqs.append(cluster.submit(workload, params, lane=lane, block=True))
    return reqs


class TestShardedEndToEnd:
    def test_requests_complete_and_report_aggregates(self):
        with ShardedCluster(shards=2, devices_per_shard=1,
                            routing="affinity") as cluster:
            reqs = _submit_menu(cluster, 24)
            assert cluster.drain(timeout=120.0)
            report = cluster.report(refresh_snapshots=True)
        assert all(r.status is RequestStatus.DONE for r in reqs)
        assert report["requests"]["done"] == 24
        assert report["shards"] == 2
        assert len(report["per_shard"]) == 2
        assert sum(s["requests_done"] for s in report["per_shard"]) == 24
        assert report["sim"]["kernel_us"] > 0
        assert report["sim"]["horizon_us"] > 0
        assert report["control"]["shard_deaths"] == 0
        for entry in report["per_shard"]:
            assert entry["inner"]["requests"]["done"] == \
                entry["requests_done"]

    def test_affinity_pins_each_kernel_to_one_shard(self):
        with ShardedCluster(shards=2, devices_per_shard=1,
                            routing="affinity", recorder=False) as cluster:
            reqs = _submit_menu(cluster, 32)
            assert cluster.drain(timeout=120.0)
        homes = {}
        for r in reqs:
            key = ShardedCluster.route_key(r.workload, r.params)
            homes.setdefault(key, set()).add(r.shard_index)
        # Every distinct kernel identity landed on exactly one shard.
        assert all(len(shards) == 1 for shards in homes.values())
        # ... and the menu actually spread across both shards.
        assert len({next(iter(s)) for s in homes.values()}) == 2

    def test_trace_spans_stitch_across_the_process_boundary(self):
        with ShardedCluster(shards=1, devices_per_shard=1) as cluster:
            req = cluster.submit("saxpy", {"n": 256, "seed": 3}, block=True)
            assert cluster.drain(timeout=60.0)
        assert req.trace is not None
        names = [s.name for s in req.trace.roots]
        assert "queue_wait" in names and "route" in names
        assert "shard" in names  # the grafted worker tree
        shard_span = next(s for s in req.trace.roots if s.name == "shard")
        child_names = {c.name for c in shard_span.children}
        assert "serve:request" in child_names or \
            {"queue_wait", "schedule"} & child_names
        # Worker trace IDs are scoped per shard, parent IDs are not.
        assert req.trace_id and not req.trace_id.startswith("t-s")

    def test_payload_rides_shared_memory_and_returns(self):
        x = np.arange(64, dtype=np.float32)
        y = np.ones(64, dtype=np.float32)
        with ShardedCluster(shards=1, devices_per_shard=1,
                            recorder=False) as cluster:
            req = cluster.submit("saxpy", {"n": 64},
                                 payload={"x": x, "y": y}, block=True)
            assert cluster.drain(timeout=60.0)
            pool_stats = cluster.pool.stats()
        assert req.status is RequestStatus.DONE, req.error
        assert req.result_payload is not None
        np.testing.assert_allclose(req.result_payload["y"], 2.0 * x + y,
                                   rtol=1e-6)
        assert pool_stats["allocs"] == pool_stats["releases"] == 1
        assert pool_stats["in_use"] == 0

    def test_payload_pickle_fallback_when_pool_overflows(self):
        x = np.arange(64, dtype=np.float32)
        y = np.zeros(64, dtype=np.float32)
        # Slots too small for the payload: put() falls back to pickling.
        with ShardedCluster(shards=1, devices_per_shard=1, recorder=False,
                            pool_slots=1, pool_slot_bytes=64) as cluster:
            req = cluster.submit("saxpy", {"n": 64},
                                 payload={"x": x, "y": y}, block=True)
            assert cluster.drain(timeout=60.0)
            fallbacks = cluster.pool.stats()["fallbacks"]
        assert req.status is RequestStatus.DONE, req.error
        assert fallbacks == 1
        np.testing.assert_allclose(req.result_payload["y"], 2.0 * x,
                                   rtol=1e-6)


class TestShardDeathRecovery:
    def test_killed_shard_requeues_no_loss_no_double_completion(self):
        n = 16
        with ShardedCluster(shards=2, devices_per_shard=1,
                            recorder=False) as cluster:
            # One kernel identity: affinity pins every request to a
            # single home shard, whose single device serves them
            # serially — so killing it mid-run provably strands work.
            reqs = [cluster.submit("sgemm",
                                   {"m": 64, "n": 64, "k": 16, "seed": i},
                                   block=True) for i in range(n)]
            deadline = time.monotonic() + 30.0
            victim = None
            while victim is None and time.monotonic() < deadline:
                for shard in list(cluster._shards.values()):
                    if cluster._inflight_count(shard.index) >= n // 2:
                        victim = shard
                        break
                else:
                    time.sleep(0.005)
            assert victim is not None, "no shard ever held the backlog"
            victim.proc.kill()
            assert cluster.drain(timeout=120.0)
            report = cluster.report()
        statuses = [r.status for r in reqs]
        finished = sum(1 for s in statuses
                       if s in (RequestStatus.DONE, RequestStatus.FAILED))
        assert finished == n  # nothing lost
        assert report["requests"]["total"] == n  # nothing double-counted
        assert report["control"]["shard_deaths"] == 1
        assert report["control"]["requeued"] > 0
        assert all(s is RequestStatus.DONE for s in statuses), \
            [r.error for r in reqs if r.status is not RequestStatus.DONE]

    def test_sole_shard_death_restores_floor_and_finishes(self):
        with ShardedCluster(shards=1, devices_per_shard=1,
                            recorder=False) as cluster:
            reqs = _submit_menu(cluster, 12)
            cluster._shards[0].proc.kill()
            assert cluster.drain(timeout=120.0)
            report = cluster.report()
        assert all(r.status is RequestStatus.DONE for r in reqs), \
            [r.error for r in reqs if r.status is not RequestStatus.DONE]
        assert report["control"]["shard_deaths"] == 1
        assert report["shards"] >= 2  # a replacement was spawned


class TestSingleVsShardedEquivalence:
    def test_signatures_identical_across_topologies(self):
        menu = [("saxpy", {"n": 256}), ("scale", {"n": 512}),
                ("sgemm", {"m": 16, "n": 16, "k": 8})]
        work = [(w, dict(p, seed=i)) for i, (w, p) in
                enumerate(menu * 8)]

        def signature(req):
            result = req.result
            if isinstance(result, float):
                result = round(result, 4)
            return (round(req.kernel_sim_us, 6), req.dram_bytes, result)

        with ServeCluster(num_devices=1, policy="round-robin",
                          recorder=False, queue_capacity=256) as single:
            s_reqs = [single.submit(w, p, block=True) for w, p in work]
            assert single.drain(timeout=120.0)
        with ShardedCluster(shards=2, devices_per_shard=1,
                            routing="round-robin", policy="round-robin",
                            recorder=False) as sharded:
            h_reqs = [sharded.submit(w, p, block=True) for w, p in work]
            assert sharded.drain(timeout=120.0)
        assert [signature(r) for r in s_reqs] == \
            [signature(r) for r in h_reqs]


class TestLaneProtection:
    def test_interactive_beats_batch_under_overload(self):
        """All batch work is submitted *first*; if interactive still
        finishes with lower latency, lane priority demonstrably
        reordered the backlog (the shallow in-flight budget keeps it in
        the parent's lane queue where priority can act)."""
        with ShardedCluster(shards=1, devices_per_shard=1, recorder=False,
                            queue_capacity=512, shard_inflight=4) as cluster:
            batch = _submit_menu(cluster, 60, lane="batch")
            interactive = _submit_menu(cluster, 20, lane="interactive")
            assert cluster.drain(timeout=180.0)
        assert all(r.status is RequestStatus.DONE
                   for r in batch + interactive)
        lat_i = np.mean([r.latency_wall_s for r in interactive])
        lat_b = np.mean([r.latency_wall_s for r in batch])
        assert lat_i < lat_b
        done_i = sorted(r.t_done_wall for r in interactive)
        done_b = sorted(r.t_done_wall for r in batch)
        # The median interactive completion precedes the median batch
        # completion even though every batch request arrived earlier.
        assert done_i[len(done_i) // 2] < done_b[len(done_b) // 2]


class TestAutoscale:
    def test_burst_scales_up_without_dropping_requests(self):
        policy = AutoscalePolicy(min_shards=1, max_shards=3,
                                 backlog_high=8.0, backlog_low=0.5,
                                 cooldown_s=0.2, interval_s=0.05)
        with ShardedCluster(shards=1, devices_per_shard=1, recorder=False,
                            autoscale=policy, shard_inflight=4) as cluster:
            reqs = _submit_menu(cluster, 64)
            assert cluster.drain(timeout=180.0)
            report = cluster.report()
        assert all(r.status is RequestStatus.DONE for r in reqs)
        ups = [e for e in report["autoscale"]["events"]
               if e["action"] == "up"]
        assert ups, "burst backlog never triggered a scale-up"
        assert report["shards"] > 1

    def test_idle_fleet_drains_down_cleanly(self):
        policy = AutoscalePolicy(min_shards=1, max_shards=3,
                                 backlog_high=1000.0, backlog_low=2.0,
                                 cooldown_s=0.1, interval_s=0.05)
        with ShardedCluster(shards=3, devices_per_shard=1, recorder=False,
                            autoscale=policy) as cluster:
            reqs = _submit_menu(cluster, 8)
            assert cluster.drain(timeout=60.0)
            deadline = time.monotonic() + 10.0
            while cluster.num_shards > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            active_after = cluster.num_shards
            report = cluster.report()
        assert all(r.status is RequestStatus.DONE for r in reqs)
        downs = [e for e in report["autoscale"]["events"]
                 if e["action"] == "down"]
        assert downs, "idle fleet never drained a shard"
        assert active_after < 3


class TestVerdictBroadcast:
    def test_kernel_sanitized_at_most_once_cluster_wide(self):
        """A divergent kernel pays its sanitized first launch on ONE
        shard; the race verdict rides the CompleteMsg to the parent,
        which rebroadcasts it, so every other shard wide-admits the
        kernel without re-sanitizing."""
        with ShardedCluster(shards=2, devices_per_shard=1,
                            routing="round-robin",
                            recorder=False) as cluster:
            # wave 1: first-ever launch of each divergent compiled
            # kernel — the only sanitized launches the cluster may take
            first = [cluster.submit("bitonic_cf", {"seed": 1}, block=True),
                     cluster.submit("kmeans_cf", {"seed": 1}, block=True)]
            assert cluster.drain(timeout=120.0)
            # wave 2: the same kernels land on *both* shards
            # (round-robin defeats affinity pinning on purpose)
            rest = []
            for workload in ("bitonic_cf", "kmeans_cf"):
                rest.extend(cluster.submit(workload, {"seed": 2 + i},
                                           block=True) for i in range(6))
            assert cluster.drain(timeout=120.0)
            report = cluster.report()
        assert all(r.status is RequestStatus.DONE for r in first + rest), \
            [r.error for r in first + rest
             if r.status is not RequestStatus.DONE]
        shards_hit = {}
        for r in rest:
            shards_hit.setdefault(r.workload, set()).add(r.shard_index)
        assert all(len(s) == 2 for s in shards_hit.values()), \
            f"wave 2 never exercised both shards: {shards_hit}"
        sanitized = {}
        for r in first + rest:
            sanitized[r.workload] = (sanitized.get(r.workload, 0) +
                                     r.sanitized_launches)
        assert all(count <= 1 for count in sanitized.values()), \
            f"kernel re-sanitized despite the broadcast verdict: {sanitized}"
        assert all(r.sanitized_launches == 0 for r in rest), \
            "a wave-2 launch re-sanitized on the adopting shard"
        control = report["control"]
        assert control["verdicts_known"] >= 2
        assert control["verdicts_broadcast"] >= 2


class TestLoadgenSharded:
    def test_sharded_loadgen_reports_per_shard(self):
        report = run_loadgen(devices=1, requests=24, seed=7, shards=2,
                             mix="compiled", mode="closed", concurrency=8,
                             lane="mixed", recorder=False)
        lg = report["loadgen"]
        assert lg["dropped"] == 0 and lg["failed"] == 0
        assert lg["shards"] == 2
        assert report["requests"]["done"] == 24
        assert len(report["per_shard"]) == 2
        assert "lanes" in report
