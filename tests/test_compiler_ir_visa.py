"""IR structure, the trace front end, vISA legalization details."""

import numpy as np
import pytest

from repro.compiler.driver import compile_kernel
from repro.compiler.frontend import TraceError, trace_kernel
from repro.compiler.ir import Function, Instr, Region, Value, VecType, \
    make_constant
from repro.compiler.passes import analyze_bales
from repro.compiler.visa import emit_visa
from repro.isa.dtypes import D
from repro.memory.surfaces import BufferSurface


class TestIR:
    def test_region_element_indices(self):
        r = Region(vstride=32, width=24, hstride=1, offset_bytes=35)
        idx = r.element_indices(48, 1)
        assert idx[0] == 35 and idx[23] == 58
        assert idx[24] == 67  # next row: +32 elements

    def test_constants_registry(self):
        fn = Function("f")
        v = make_constant(fn, np.arange(4), D)
        assert fn.constant_of(v).tolist() == [0, 1, 2, 3]
        assert v.vtype == VecType(D, 4)

    def test_uses_map(self):
        fn = Function("f")
        a = make_constant(fn, np.arange(4), D)
        out = Value(VecType(D, 4))
        fn.append(Instr("add", out, [a, a]))
        uses = fn.uses()
        # Each operand occurrence is a distinct use (a appears twice).
        assert len(uses[a.id]) == 2

    def test_printing(self):
        fn = Function("f")
        a = make_constant(fn, np.arange(4), D)
        out = Value(VecType(D, 4))
        fn.append(Instr("add", out, [a, 5]))
        text = str(fn)
        assert "define @f" in text and "add" in text


class TestFrontend:
    def test_loops_unroll(self):
        def body(cmx, buf):
            v = cmx.vector(np.int32, 8, np.zeros(8))
            for _ in range(3):
                v += 1
            cmx.write_scattered(buf, 0, np.arange(8), v)

        fn = trace_kernel(body, "k", [("buf", False)])
        assert sum(i.op == "add" for i in fn.instrs) == 3

    def test_scalar_params_symbolic(self):
        def body(cmx, buf, tid):
            v = cmx.vector(np.int32, 4, np.zeros(4))
            cmx.write(buf, tid * 16, v)

        fn = trace_kernel(body, "k", [("buf", False)], ["tid"])
        assert any(i.op == "param" for i in fn.instrs)
        assert any(i.op == "mul" for i in fn.instrs)  # tid * 16

    def test_matrix_flattened_with_2d_region(self):
        def body(cmx, buf):
            m = cmx.matrix(np.uint8, 8, 32, np.zeros(256))
            s = cmx.vector(np.uint8, 144, np.zeros(144))
            s.assign(m.select(6, 1, 24, 1, 1, 3))
            cmx.write_scattered(buf, 0, np.arange(144), s)

        fn = trace_kernel(body, "k", [("buf", False)])
        rd = next(i for i in fn.instrs if i.op == "rdregion")
        assert rd.region.vstride == 32
        assert rd.region.width == 24
        assert rd.region.offset_bytes == 35

    def test_unsupported_nested_select(self):
        def body(cmx, buf):
            v = cmx.vector(np.int32, 16, np.zeros(16))
            v.select(8, 2, 0).select(4, 2, 0)

        with pytest.raises(TraceError):
            trace_kernel(body, "k", [("buf", False)])


class TestLegalization:
    def test_wide_float_op_splits_to_simd16(self):
        def body(cmx, buf):
            a = cmx.vector(np.float32, 64)
            cmx.read(buf, 0, a)
            b = cmx.vector(np.float32, 64)
            b.assign(a + 1.0)
            cmx.write(buf, 0, b)

        k = compile_kernel(body, "k", [("buf", False)])
        adds = [i for i in k.program if i.opcode.value == "add"]
        assert len(adds) == 4
        assert all(i.exec_size == 16 for i in adds)

    def test_double_ops_limited_to_simd8(self):
        def body(cmx, buf):
            a = cmx.vector(np.float64, 16)
            cmx.read(buf, 0, a)
            b = cmx.vector(np.float64, 16)
            b.assign(a + 1.0)
            cmx.write(buf, 0, b)

        k = compile_kernel(body, "k", [("buf", False)])
        adds = [i for i in k.program if i.opcode.value == "add"]
        assert all(i.exec_size <= 8 for i in adds)
        buf = BufferSurface(np.arange(16, dtype=np.float64))
        k.run([buf])
        assert buf.to_numpy().tolist() == [i + 1.0 for i in range(16)]

    def test_non_splat_constants_materialize_in_chunks(self):
        def body(cmx, buf):
            idx = cmx.vector(np.uint32, 16, np.arange(16))
            v = cmx.vector(np.float32, 16)
            cmx.read_scattered(buf, 0, idx, v)
            out = cmx.vector(np.float32, 16)
            out.assign(v)
            cmx.write(buf, 0, out)

        k = compile_kernel(body, "k", [("buf", False)], optimize=False)
        vec_imm_movs = [i for i in k.program
                        if i.opcode.value == "mov" and i.srcs
                        and hasattr(i.srcs[0], "values")]
        assert len(vec_imm_movs) == 2  # 16 elements / 8 per vector imm

    def test_splat_constant_becomes_immediate(self):
        def body(cmx, buf):
            a = cmx.vector(np.float32, 16)
            cmx.read(buf, 0, a)
            b = cmx.vector(np.float32, 16)
            b.assign(a * 3.0)
            cmx.write(buf, 0, b)

        k = compile_kernel(body, "k", [("buf", False)])
        muls = [i for i in k.program if i.opcode.value == "mul"]
        from repro.isa.instructions import Immediate

        assert any(isinstance(s, Immediate) for m in muls for s in m.srcs)

    def test_visa_printing(self):
        def body(cmx, buf):
            a = cmx.vector(np.float32, 8)
            cmx.read(buf, 0, a)
            b = cmx.vector(np.float32, 8)
            b.assign(a + a)
            cmx.write(buf, 0, b)

        fn = trace_kernel(body, "k", [("buf", False)])
        prog = emit_visa(fn, analyze_bales(fn))
        text = str(prog)
        assert ".kernel k" in text and ".decl" in text


class TestCompiledExecution:
    def test_scalar_param_flow(self):
        def body(cmx, buf, tid):
            v = cmx.vector(np.uint32, 4, [1, 2, 3, 4])
            cmx.write(buf, tid * 16, v)

        k = compile_kernel(body, "k", [("buf", False)], ["tid"])
        buf = BufferSurface(np.zeros(16, dtype=np.uint32))
        k.run([buf], {"tid": 2})
        assert buf.to_numpy()[8:12].tolist() == [1, 2, 3, 4]

    def test_cmp_and_merge_chain(self):
        def body(cmx, src, dst):
            v = cmx.vector(np.int32, 16)
            cmx.read(src, 0, v)
            clipped = cmx.vector(np.int32, 16, np.zeros(16))
            clipped.merge(v, 99, v < 50)
            cmx.write(dst, 0, clipped)

        k = compile_kernel(body, "k", [("src", False), ("dst", False)])
        src = BufferSurface(np.arange(0, 160, 10, dtype=np.int32))
        dst = BufferSurface(np.zeros(16, dtype=np.int32))
        k.run([src, dst])
        expect = [x if x < 50 else 99 for x in range(0, 160, 10)]
        assert dst.to_numpy().tolist() == expect
