"""Compiler middle end: constant folding, region collapsing, DCE, baling."""

import numpy as np

from repro.compiler.frontend import trace_kernel
from repro.compiler.passes import (
    analyze_bales, constant_fold, dead_code_eliminate, region_collapse,
)
from repro.compiler.passes.region_collapse import region_from_indices


def build(body, surfaces=(("buf", False),), scalars=()):
    return trace_kernel(body, "k", surfaces, scalars)


class TestConstantFold:
    def test_arith_on_constants_folds(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8, np.arange(8))
            b = a + 10
            c = b * 2
            cmx.write_scattered(buf, 0, np.arange(8), c)

        fn = build(body)
        folded = constant_fold(fn)
        assert folded >= 2
        ops = [i.op for i in fn.instrs]
        assert "add" not in ops and "mul" not in ops

    def test_rdregion_of_constant_folds(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8, np.arange(8))
            sel = a.select(4, 2, 1)
            out = cmx.vector(np.int32, 4)
            out.assign(sel)
            cmx.write_scattered(buf, 0, np.arange(4), out)

        fn = build(body)
        constant_fold(fn)
        dead_code_eliminate(fn)
        consts = [fn.constants[i.result.id] for i in fn.instrs
                  if i.op == "constant" and i.result.id in fn.constants]
        assert any(c.tolist() == [1, 3, 5, 7] for c in consts)

    def test_wrregion_of_constants_folds(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8, np.zeros(8))
            a.select(4, 2, 0).assign([9, 9, 9, 9])
            cmx.write_scattered(buf, 0, np.arange(8), a)

        fn = build(body)
        constant_fold(fn)
        consts = [c.tolist() for c in fn.constants.values()]
        assert [9, 0, 9, 0, 9, 0, 9, 0] in consts


class TestRegionCollapse:
    def test_region_from_indices_contiguous(self):
        r = region_from_indices(np.arange(16))
        assert (r.width, r.hstride) == (16, 1)

    def test_region_from_indices_strided(self):
        r = region_from_indices(np.arange(0, 32, 2))
        assert r.hstride == 2

    def test_region_from_indices_two_runs(self):
        idx = np.concatenate([np.arange(8), np.arange(16, 24)])
        r = region_from_indices(idx)
        assert (r.vstride, r.width, r.hstride) == (16, 8, 1)

    def test_region_from_indices_impossible(self):
        assert region_from_indices(np.asarray([0, 1, 3, 7])) is None

    def test_nested_rdregion_composes(self):
        def body(cmx, buf):
            src = cmx.vector(np.int32, 16)
            cmx.read_scattered(buf, 0, np.arange(16), src)
            outer = cmx.vector(np.int32, 8)
            outer.assign(src.select(8, 2, 0))
            inner = cmx.vector(np.int32, 4)
            inner.assign(outer.select(4, 2, 0))
            cmx.write_scattered(buf, 0, np.arange(4), inner)

        fn = build(body)
        region_collapse(fn)
        rds = [i for i in fn.instrs if i.op == "rdregion"]
        strides = {i.region.hstride for i in rds}
        assert 4 in strides  # composed stride 2*2

    def test_full_overwrite_becomes_mov(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8)
            cmx.read_scattered(buf, 0, np.arange(8), a)
            b = cmx.vector(np.int32, 8, np.zeros(8))
            b.select(8, 1, 0).assign(a)
            cmx.write_scattered(buf, 0, np.arange(8), b)

        fn = build(body)
        n = region_collapse(fn)
        assert n >= 1
        assert any(i.op == "mov" for i in fn.instrs)


class TestDeadCode:
    def test_unused_values_removed(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8, np.arange(8))
            _dead = a + 5
            live = a * 2
            cmx.write_scattered(buf, 0, np.arange(8), live)

        fn = build(body)
        removed = dead_code_eliminate(fn)
        assert removed >= 1
        assert "add" not in [i.op for i in fn.instrs]

    def test_shadowed_wrregion_elided(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8)
            cmx.read_scattered(buf, 0, np.arange(8), a)
            b = cmx.vector(np.int32, 8, np.zeros(8))
            b.select(4, 1, 0).assign(a.select(4, 1, 0))   # shadowed
            b.select(8, 1, 0).assign(a)                   # full overwrite
            cmx.write_scattered(buf, 8, np.arange(8), b)

        fn = build(body)
        n_wr_before = sum(i.op == "wrregion" for i in fn.instrs)
        dead_code_eliminate(fn)
        n_wr_after = sum(i.op == "wrregion" for i in fn.instrs)
        assert n_wr_after < n_wr_before

    def test_side_effects_kept(self):
        def body(cmx, buf):
            a = cmx.vector(np.int32, 8, np.arange(8))
            cmx.write_scattered(buf, 0, np.arange(8), a)

        fn = build(body)
        dead_code_eliminate(fn)
        assert any(i.op == "scatter" for i in fn.instrs)


class TestBaling:
    def test_rdregion_baled_into_consumer(self):
        def body(cmx, buf):
            src = cmx.vector(np.uint8, 32)
            cmx.read_scattered(buf, 0, np.arange(32), src)
            out = cmx.vector(np.float32, 16)
            out.assign(src.select(16, 2, 0))
            cmx.write_scattered(buf, 0, np.arange(16), out)

        fn = build(body)
        bales = analyze_bales(fn)
        assert any(r == "src_region" for r in bales.absorbed.values())

    def test_conversion_mov_baled_as_dst(self):
        def body(cmx, buf):
            a = cmx.vector(np.float32, 16)
            cmx.read_scattered(buf, 0, np.arange(16), a)
            out = cmx.vector(np.uint8, 16)
            out.assign(a * 2.0)  # mul result converted on assignment
            cmx.write_scattered(buf, 0, np.arange(16), out)

        fn = build(body)
        bales = analyze_bales(fn)
        assert any(r == "dst_conv" for r in bales.absorbed.values())

    def test_wrregion_baled_as_dst_region(self):
        def body(cmx, buf):
            a = cmx.vector(np.float32, 16)
            cmx.read_scattered(buf, 0, np.arange(16), a)
            out = cmx.vector(np.float32, 32, np.zeros(32))
            out.select(16, 2, 0).assign(a + 1.0)
            cmx.write_scattered(buf, 0, np.arange(32), out)

        fn = build(body)
        bales = analyze_bales(fn)
        assert any(r == "dst_region" for r in bales.absorbed.values())
