"""Device runtime: enqueue accounting, reports, machine variants."""

import numpy as np
import pytest

from repro import Device, GEN9_SKL, GEN11_ICL, cm, ocl
from repro.workloads import linear_filter as lf
from repro.workloads.common import run_and_time


class TestQueueAccounting:
    def test_launch_overhead_pipelines(self):
        dev = Device()
        buf = dev.buffer(np.zeros(64, dtype=np.float32))

        @cm.cm_kernel
        def tiny():
            v = cm.vector(cm.float32, 16, 1.0)
            cm.write(buf, 0, v)

        dev.run_cm(tiny, grid=(1,))
        one = dev.total_time_us
        dev.run_cm(tiny, grid=(1,))
        two = dev.total_time_us
        kernel_us = dev.runs[0].kernel_time_us
        # The second enqueue pays the pipelined gap, not the full overhead.
        assert two - one == pytest.approx(
            kernel_us + dev.machine.pipelined_launch_us, rel=0.01)

    def test_reset_clears_runs(self):
        dev = Device()
        buf = dev.buffer(np.zeros(64, dtype=np.float32))

        @cm.cm_kernel
        def tiny():
            v = cm.vector(cm.float32, 16, 1.0)
            cm.write(buf, 0, v)

        dev.run_cm(tiny, grid=(2,))
        assert dev.launches == 1
        dev.reset()
        assert dev.launches == 0 and dev.total_time_us == 0.0

    def test_report_mentions_bound(self):
        dev = Device()
        buf = dev.buffer(np.zeros(1024, dtype=np.float32))

        @cm.cm_kernel
        def k():
            t = cm.thread_x()
            v = cm.vector(cm.float32, 64, 2.0)
            cm.write(buf, t * 256, v)

        dev.run_cm(k, grid=(4,), name="writer")
        text = dev.report()
        assert "writer" in text and "bound by" in text
        assert "Gen11" in text

    def test_line_tracking_reset_between_enqueues(self):
        dev = Device()
        buf = dev.buffer(np.zeros(4096, dtype=np.uint8))

        @cm.cm_kernel
        def reader():
            v = cm.vector(cm.uchar, 256)
            cm.read(buf, 0, v)

        r1 = dev.run_cm(reader, grid=(1,))
        r2 = dev.run_cm(reader, grid=(1,))
        # Both enqueues are cold: identical compulsory traffic.
        assert r1.timing.dram_bytes == r2.timing.dram_bytes > 0


class TestMachineVariants:
    def test_gen9_slower_than_gen11(self):
        img = lf.make_image(256, 96)
        fast = run_and_time("icl", lambda d: lf.run_cm(d, img),
                            machine=GEN11_ICL)
        slow = run_and_time("skl", lambda d: lf.run_cm(d, img),
                            machine=GEN9_SKL)
        assert np.array_equal(fast.output, slow.output)
        assert slow.kernel_time_us > fast.kernel_time_us

    def test_cm_wins_on_both_machines(self):
        img = lf.make_image(256, 96)
        for machine in (GEN9_SKL, GEN11_ICL):
            c = run_and_time("c", lambda d: lf.run_cm(d, img),
                             machine=machine)
            o = run_and_time("o", lambda d: lf.run_ocl(d, img),
                             machine=machine)
            assert o.total_time_us > c.total_time_us


class TestMixedQueues:
    def test_cm_and_ocl_share_a_device(self):
        dev = Device()
        src = dev.buffer(np.arange(64, dtype=np.uint32))
        mid = dev.buffer(np.zeros(64, dtype=np.uint32))
        dst = dev.buffer(np.zeros(64, dtype=np.uint32))

        @cm.cm_kernel
        def stage1():
            v = cm.vector(cm.uint, 64)
            cm.read(src, 0, v)
            out = cm.vector(cm.uint, 64)
            out.assign(v + 1)
            cm.write(mid, 0, out)

        def stage2():
            gid = ocl.get_global_id(0)
            v = ocl.load(mid, gid, dtype=np.uint32)
            ocl.store(dst, gid, v * 2)

        dev.run_cm(stage1, grid=(1,))
        ocl.enqueue(dev, stage2, global_size=64, local_size=32)
        assert dev.launches == 2
        assert dst.to_numpy().tolist() == [(i + 1) * 2 for i in range(64)]


class TestGen12:
    def test_gen12_fastest(self):
        from repro import GEN12_TGL

        img = lf.make_image(256, 96)
        times = {}
        for machine in (GEN9_SKL, GEN11_ICL, GEN12_TGL):
            run = run_and_time("cm", lambda d: lf.run_cm(d, img),
                               machine=machine)
            times[machine.name] = run.kernel_time_us
        ordered = sorted(times.items(), key=lambda kv: kv[1])
        assert "Gen12" in ordered[0][0]
        assert "Gen9" in ordered[-1][0]
