"""Table I workloads: conv1x1, conv3x3, stencil2d, systolic GEMM."""

import numpy as np
import pytest

from repro.workloads import conv, stencil, systolic
from repro.workloads.common import run_and_time, speedup


class TestStencil2D:
    def test_both_match_reference(self):
        g = stencil.make_grid(64, 32)
        ref = stencil.reference(g)
        c = run_and_time("c", lambda d: stencil.run_cm(d, g))
        o = run_and_time("o", lambda d: stencil.run_ocl(d, g))
        assert np.allclose(c.output, ref, atol=1e-5)
        assert np.allclose(o.output, ref, atol=1e-5)

    def test_border_untouched(self):
        g = stencil.make_grid(32, 16)
        c = run_and_time("c", lambda d: stencil.run_cm(d, g))
        assert np.array_equal(c.output[0], g[0])
        assert np.array_equal(c.output[:, 0], g[:, 0])

    def test_cm_wins_at_scale(self):
        g = stencil.make_grid(256, 128)
        c = run_and_time("c", lambda d: stencil.run_cm(d, g))
        o = run_and_time("o", lambda d: stencil.run_ocl(d, g))
        assert speedup(o, c) > 1.0

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            stencil.make_grid(30, 16)


class TestConv3x3:
    def test_both_match_reference(self):
        img, w = conv.make_conv3x3_inputs(64, 32)
        ref = conv.conv3x3_reference(img, w)
        c = run_and_time("c", lambda d: conv.run_cm_conv3x3(d, img, w))
        o = run_and_time("o", lambda d: conv.run_ocl_conv3x3(d, img, w))
        assert np.allclose(c.output, ref, atol=1e-4)
        assert np.allclose(o.output, ref, atol=1e-4)

    def test_identity_weights(self):
        img, _ = conv.make_conv3x3_inputs(32, 16)
        w = np.zeros((2, 3, 3), dtype=np.float32)
        w[0, 1, 1] = 1.0
        w[1, 0, 0] = 1.0
        c = run_and_time("c", lambda d: conv.run_cm_conv3x3(d, img, w))
        assert np.allclose(c.output[0], img[1:-1, 1:-1], atol=1e-6)
        assert np.allclose(c.output[1], img[:-2, :-2], atol=1e-6)


class TestConv1x1:
    def test_matches_gemm_reference(self):
        acts, w = conv.make_conv1x1_inputs(hw=128, cin=32, cout=32)
        ref = conv.conv1x1_reference(acts, w)
        c = run_and_time("c", lambda d: conv.run_cm_conv1x1(d, acts, w))
        o = run_and_time("o", lambda d: conv.run_ocl_conv1x1(d, acts, w))
        assert np.allclose(c.output, ref, rtol=1e-2, atol=1e-2)
        assert np.allclose(o.output, ref, rtol=1e-2, atol=1e-2)


class TestSystolicGEMM:
    def test_matches_reference(self):
        a, b, c = systolic.make_inputs(64, 32, 32)
        ref = systolic.reference(a, b, c)
        out_c = run_and_time("c", lambda d: systolic.run_cm(d, a, b, c))
        out_o = run_and_time("o", lambda d: systolic.run_ocl(d, a, b, c))
        assert np.allclose(out_c.output, ref, rtol=1e-3, atol=1e-3)
        assert np.allclose(out_o.output, ref, rtol=1e-3, atol=1e-3)
