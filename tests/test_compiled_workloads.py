"""Workload kernels through the full compiler path (differential tests).

The eager path runs every workload; these tests additionally push
representative workload kernels through trace -> passes -> vISA -> RA ->
Gen ISA and execute the binaries, checking bit-exact agreement with the
numpy references.  This is the compiler's strongest integration signal:
real register pressure, real regions, real memory messages.
"""

import numpy as np

from repro.compiler import compile_kernel
from repro.memory.surfaces import BufferSurface, Image2DSurface
from repro.workloads import stencil


class TestCompiledStencil:
    def _kernel(self):
        rows, cols = stencil.ROWS, stencil.COLS
        c0, c1 = float(stencil.C0), float(stencil.C1)

        def body(cmx, src, dst, tx, ty):
            tile = cmx.matrix(np.float32, rows + 2, cols + 2)
            cmx.read(src, tx * cols * 4, ty * rows, tile)
            acc = cmx.matrix(np.float32, rows, cols)
            acc.assign(tile.select(rows, 1, cols, 1, 1, 1) * np.float32(c0))
            for (i, j) in ((0, 1), (2, 1), (1, 0), (1, 2)):
                acc += tile.select(rows, 1, cols, 1, i, j) * np.float32(c1)
            out = cmx.matrix(np.float32, rows, cols)
            out.assign(acc)
            cmx.write(dst, (tx * cols + 1) * 4, ty * rows + 1, out)

        return compile_kernel(body, "stencil",
                              [("src", True), ("dst", True)],
                              ["tx", "ty"])

    def test_compiled_matches_reference(self):
        k = self._kernel()
        grid = stencil.make_grid(32, 16, seed=9)
        src = Image2DSurface(grid.copy(), bytes_per_pixel=4)
        dst = Image2DSurface(grid.copy(), bytes_per_pixel=4)
        for ty in range(16 // stencil.ROWS):
            for tx in range(32 // stencil.COLS):
                k.run([src, dst], {"tx": tx, "ty": ty})
        expect = stencil.reference(grid)
        assert np.allclose(dst.to_numpy(), expect, atol=1e-6)

    def test_no_spills_and_reasonable_size(self):
        k = self._kernel()
        assert k.allocation.spills == 0
        assert k.num_instructions < 150


class TestCompiledScanBlock:
    def test_register_scan_kernel(self):
        """The prefix sum's in-register scan network, compiled."""
        n = 64

        def body(cmx, buf, tid):
            v = cmx.vector(np.uint32, n)
            cmx.read(buf, tid * (n * 4), v)
            shift = 1
            while shift < n:
                upper = v.select(n - shift, 1, shift)
                tmp = cmx.vector(np.uint32, n - shift, np.zeros(n - shift))
                tmp.assign(v.select(n - shift, 1, 0))
                upper += tmp
                shift *= 2
            cmx.write(buf, tid * (n * 4), v)

        k = compile_kernel(body, "scan", [("buf", False)], ["tid"])
        data = np.arange(2 * n, dtype=np.uint32)
        buf = BufferSurface(data.copy())
        k.run([buf], {"tid": 0})
        k.run([buf], {"tid": 1})
        expect = np.concatenate([np.cumsum(data[:n]), np.cumsum(data[n:])])
        assert buf.to_numpy().tolist() == expect.astype(np.uint32).tolist()


class TestCompiledBitonicStep:
    def test_compare_exchange_network_step(self):
        """One in-register compare-exchange split step, compiled."""
        n = 32
        stride, size = 4, 8

        def body(cmx, buf):
            v = cmx.vector(np.uint32, n)
            cmx.read(buf, 0, v)
            rows = n // (2 * stride)
            lo_idx = [r * 2 * stride + c for r in range(rows)
                      for c in range(stride)]
            asc = [(i & size) == 0 for i in lo_idx]
            lo = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            hi = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            # Gather the two halves of every pair via strided selects.
            for r in range(rows):
                lo.select(stride, 1, r * stride).assign(
                    v.select(stride, 1, r * 2 * stride))
                hi.select(stride, 1, r * stride).assign(
                    v.select(stride, 1, r * 2 * stride + stride))
            mn = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            mn.assign(lo)
            mn.merge(hi, hi < lo)
            mx = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            mx.assign(lo)
            mx.merge(hi, hi > lo)
            new_lo = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            new_lo.assign(mn)
            new_lo.merge(mx, [0 if a else 1 for a in asc])
            new_hi = cmx.vector(np.uint32, n // 2, np.zeros(n // 2))
            new_hi.assign(mx)
            new_hi.merge(mn, [0 if a else 1 for a in asc])
            for r in range(rows):
                v.select(stride, 1, r * 2 * stride).assign(
                    new_lo.select(stride, 1, r * stride))
                v.select(stride, 1, r * 2 * stride + stride).assign(
                    new_hi.select(stride, 1, r * stride))
            cmx.write(buf, 0, v)

        k = compile_kernel(body, "cmpxchg", [("buf", False)])
        rng = np.random.default_rng(4)
        data = rng.integers(0, 1000, n).astype(np.uint32)
        buf = BufferSurface(data.copy())
        k.run([buf])

        # Oracle: the same split step in numpy.
        expect = data.copy()
        for k_idx in range(n // 2):
            a = (k_idx // stride) * 2 * stride + (k_idx % stride)
            b = a + stride
            asc = (a & size) == 0
            lo_v, hi_v = expect[a], expect[b]
            mn, mx = min(lo_v, hi_v), max(lo_v, hi_v)
            expect[a], expect[b] = (mn, mx) if asc else (mx, mn)
        assert buf.to_numpy().tolist() == expect.tolist()
