"""Workload correctness: CM and OpenCL vs numpy references (small sizes)."""

import numpy as np
import pytest

from repro.workloads import (
    bitonic, gemm, histogram, kmeans, linear_filter, prefix_sum, spmv,
    transpose,
)
from repro.workloads.common import run_and_time, speedup


class TestLinearFilter:
    @pytest.fixture(scope="class")
    def img(self):
        return linear_filter.make_image(32, 12)

    def test_cm_matches_reference(self, img):
        run = run_and_time("cm", lambda d: linear_filter.run_cm(d, img))
        assert np.array_equal(run.output, linear_filter.reference(img))

    def test_ocl_matches_reference(self, img):
        run = run_and_time("ocl", lambda d: linear_filter.run_ocl(d, img))
        assert np.array_equal(run.output, linear_filter.reference(img))

    def test_ocl_optimized_matches_reference(self, img):
        run = run_and_time(
            "o2", lambda d: linear_filter.run_ocl_optimized(d, img))
        assert np.array_equal(run.output, linear_filter.reference(img))

    def test_dims_validated(self):
        with pytest.raises(ValueError):
            linear_filter.make_image(33, 12)

    def test_cm_wins(self, img):
        c = run_and_time("cm", lambda d: linear_filter.run_cm(d, img))
        o = run_and_time("o", lambda d: linear_filter.run_ocl(d, img))
        assert speedup(o, c) > 1.0


class TestBitonic:
    @pytest.mark.parametrize("log2n", [9, 10, 11])
    def test_cm_sorts(self, log2n):
        keys = bitonic.make_input(log2n)
        run = run_and_time("cm", lambda d: bitonic.run_cm(d, keys))
        assert np.array_equal(run.output, np.sort(keys))

    @pytest.mark.parametrize("log2n", [9, 10])
    def test_ocl_sorts(self, log2n):
        keys = bitonic.make_input(log2n)
        run = run_and_time("ocl", lambda d: bitonic.run_ocl(d, keys))
        assert np.array_equal(run.output, np.sort(keys))

    def test_cm_sorts_adversarial_inputs(self):
        for keys in (np.zeros(512, np.uint32),
                     np.arange(512, dtype=np.uint32),
                     np.arange(512, dtype=np.uint32)[::-1].copy()):
            run = run_and_time("cm", lambda d: bitonic.run_cm(d, keys))
            assert np.array_equal(run.output, np.sort(keys))

    def test_cm_fewer_launches(self):
        keys = bitonic.make_input(10)
        c = run_and_time("cm", lambda d: bitonic.run_cm(d, keys))
        o = run_and_time("ocl", lambda d: bitonic.run_ocl(d, keys))
        assert c.launches < o.launches

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            run_and_time("cm", lambda d: bitonic.run_cm(
                d, np.zeros(513, np.uint32)))


class TestHistogram:
    @pytest.mark.parametrize("maker", [histogram.make_random,
                                       histogram.make_natural,
                                       histogram.make_homogeneous])
    def test_both_match_reference(self, maker):
        px = maker(1 << 14)
        ref = histogram.reference(px)
        c = run_and_time("cm", lambda d: histogram.run_cm(
            d, px, pixels_per_thread=1024))
        o = run_and_time("o", lambda d: histogram.run_ocl(
            d, px, pixels_per_item=16, wg_size=256))
        assert np.array_equal(c.output, ref)
        assert np.array_equal(o.output, ref)

    def test_ocl_input_sensitive_cm_not(self):
        n = 1 << 18
        rand, homog = histogram.make_random(n), histogram.make_homogeneous(n)
        cm_r = run_and_time("c", lambda d: histogram.run_cm(d, rand))
        cm_h = run_and_time("c", lambda d: histogram.run_cm(d, homog))
        ocl_r = run_and_time("o", lambda d: histogram.run_ocl(d, rand))
        ocl_h = run_and_time("o", lambda d: histogram.run_ocl(d, homog))
        assert cm_h.total_time_us == pytest.approx(cm_r.total_time_us,
                                                   rel=0.02)
        assert ocl_h.total_time_us > 1.2 * ocl_r.total_time_us


class TestKmeans:
    def test_both_match_reference(self):
        pts, _ = kmeans.make_points(1 << 12, k=8)
        rng = np.random.default_rng(0)
        c0 = pts[rng.choice(len(pts), 8, replace=False)].copy()
        ref = kmeans.reference(pts, c0, 2)
        c = run_and_time("c", lambda d: kmeans.run_cm(
            d, pts, c0, 2, pts_per_thread=512))
        o = run_and_time("o", lambda d: kmeans.run_ocl(
            d, pts, c0, 2, pts_per_item=32, wg_size=128))
        assert np.allclose(c.output, ref, atol=0.1)
        assert np.allclose(o.output, ref, atol=0.1)


class TestSpMV:
    @pytest.mark.parametrize("maker", [
        lambda: spmv.make_protein(nrows=256),
        lambda: spmv.make_nd24k(nrows=512),
        lambda: spmv.make_webbase(nrows=1024),
    ])
    def test_both_match_reference(self, maker):
        m = maker()
        x = np.random.default_rng(2).standard_normal(m.ncols) \
            .astype(np.float32)
        ref = spmv.reference(m, x)
        c = run_and_time("c", lambda d: spmv.run_cm(d, m, x))
        o = run_and_time("o", lambda d: spmv.run_ocl(d, m, x))
        assert np.allclose(c.output, ref, rtol=1e-3, atol=1e-3)
        assert np.allclose(o.output, ref, rtol=1e-3, atol=1e-3)

    def test_empty_matrix(self):
        m = spmv.CSRMatrix(64, 64,
                           np.zeros(65, dtype=np.uint32),
                           np.zeros(0, dtype=np.uint32),
                           np.zeros(0, dtype=np.float32))
        x = np.ones(64, dtype=np.float32)
        c = run_and_time("c", lambda d: spmv.run_cm(d, m, x, 8))
        assert np.array_equal(c.output, np.zeros(64, dtype=np.float32))

    def test_simd_width_selection(self):
        assert spmv._simd_width_for(1) == 4
        assert spmv._simd_width_for(4) == 4
        assert spmv._simd_width_for(5) == 8
        assert spmv._simd_width_for(9) == 16
        assert spmv._simd_width_for(300) == 16


class TestTranspose:
    @pytest.mark.parametrize("n", [16, 48, 64])
    def test_both_match_reference(self, n):
        a = transpose.make_matrix(n)
        c = run_and_time("c", lambda d: transpose.run_cm(d, a))
        o = run_and_time("o", lambda d: transpose.run_ocl(d, a))
        assert np.array_equal(c.output, a.T)
        assert np.array_equal(o.output, a.T)

    def test_non_tile_multiple_rejected(self):
        with pytest.raises(ValueError):
            run_and_time("c", lambda d: transpose.run_cm(
                d, np.zeros((17, 17), dtype=np.float32)))


class TestGEMM:
    def test_sgemm_matches_reference(self):
        a, b, c = gemm.make_inputs(64, 32, 32)
        ref = gemm.reference(a, b, c, alpha=2.0, beta=0.5)
        out_c = run_and_time("c", lambda d: gemm.run_cm_sgemm(
            d, a, b, c, alpha=2.0, beta=0.5))
        out_o = run_and_time("o", lambda d: gemm.run_ocl_sgemm(
            d, a, b, c, alpha=2.0, beta=0.5))
        assert np.allclose(out_c.output, ref, rtol=1e-3, atol=1e-3)
        assert np.allclose(out_o.output, ref, rtol=1e-3, atol=1e-3)

    def test_dgemm_matches_reference(self):
        a, b, c = gemm.make_inputs(32, 32, 32, dtype=np.float64)
        ref = gemm.reference(a, b, c)
        out_c = run_and_time("c", lambda d: gemm.run_cm_dgemm(d, a, b, c))
        out_o = run_and_time("o", lambda d: gemm.run_ocl_dgemm(d, a, b, c))
        assert np.allclose(out_c.output, ref, rtol=1e-10)
        assert np.allclose(out_o.output, ref, rtol=1e-10)

    def test_bad_dims_rejected(self):
        a, b, c = gemm.make_inputs(30, 32, 32)
        with pytest.raises(ValueError):
            run_and_time("c", lambda d: gemm.run_cm_sgemm(d, a, b, c))


class TestPrefixSum:
    @pytest.mark.parametrize("n", [512, 2048, 8192])
    def test_both_match_reference(self, n):
        v = prefix_sum.make_input(n)
        ref = prefix_sum.reference(v)
        c = run_and_time("c", lambda d: prefix_sum.run_cm(d, v))
        o = run_and_time("o", lambda d: prefix_sum.run_ocl(d, v))
        assert np.array_equal(c.output, ref)
        assert np.array_equal(o.output, ref)

    def test_wraparound_is_modular(self):
        v = np.full(512, 0xF000_0000, dtype=np.uint32)
        c = run_and_time("c", lambda d: prefix_sum.run_cm(d, v))
        assert np.array_equal(c.output, prefix_sum.reference(v))

    def test_cm_avoids_slm_and_barriers(self):
        v = prefix_sum.make_input(2048)
        c = run_and_time("c", lambda d: prefix_sum.run_cm(d, v))
        o = run_and_time("o", lambda d: prefix_sum.run_ocl(d, v))
        cm_stats = [r.timing for r in c.device.runs]
        ocl_stats = [r.timing for r in o.device.runs]
        assert sum(t.barriers for t in cm_stats) == 0
        assert sum(t.barriers for t in ocl_stats) > 0
        assert sum(t.slm_bytes for t in cm_stats) == 0
        assert sum(t.slm_bytes for t in ocl_stats) > 0
