"""The event-driven simulator vs the analytic timing model."""

import pytest

from repro import Device, cm
from repro.sim.event_sim import simulate
from repro.sim.machine import GEN11_ICL
from repro.sim.timing import time_kernel
from repro.sim.trace import MemKind, ThreadTrace
from repro.workloads import linear_filter as lf
from repro.workloads import transpose as tp


def _compute_trace(n_instr):
    tr = ThreadTrace(GEN11_ICL)
    for _ in range(n_instr):
        tr.alu(16, cm.float32)
    return tr


class TestSynthetic:
    def test_pure_compute_matches_analytic(self):
        traces = [_compute_trace(100) for _ in range(448)]
        analytic = time_kernel(traces, GEN11_ICL)
        event = simulate(traces, GEN11_ICL)
        assert event.cycles == pytest.approx(analytic.compute_cycles,
                                             rel=0.05)

    def test_single_thread_latency(self):
        tr = ThreadTrace(GEN11_ICL)
        ev = tr.memory(MemKind.OWORD_READ, nbytes=64, lines=1)
        tr.consume(ev)
        tr.alu(16, cm.float32)
        event = simulate([tr], GEN11_ICL)
        assert event.cycles >= GEN11_ICL.dataport_latency

    def test_dataport_contention_serializes(self):
        def loaded_thread():
            tr = ThreadTrace(GEN11_ICL)
            for _ in range(4):
                tr.memory(MemKind.OWORD_READ, nbytes=512, lines=8,
                          l3_bytes=512)
            return tr

        few = simulate([loaded_thread() for _ in range(8)], GEN11_ICL)
        many = simulate([loaded_thread() for _ in range(256)], GEN11_ICL)
        assert many.cycles > few.cycles

    def test_barrier_synchronizes(self):
        fast = ThreadTrace(GEN11_ICL)
        fast.barrier()
        slow = ThreadTrace(GEN11_ICL)
        for _ in range(500):
            slow.alu(16, cm.float32)
        slow.barrier()
        event = simulate([fast, slow], GEN11_ICL)
        # The fast thread waits for the slow one: total > slow's compute.
        assert event.cycles >= 500 * 2

    def test_server_busy_accounted(self):
        tr = ThreadTrace(GEN11_ICL)
        tr.memory(MemKind.OWORD_READ, nbytes=640, lines=10, l3_bytes=640)
        event = simulate([tr], GEN11_ICL)
        assert event.server_busy["l3"] > 0
        assert event.server_busy["dataport0"] > 0


class TestAgainstWorkloads:
    """The two models must agree on *ordering* (CM faster than OpenCL)."""

    def _traces_of(self, run):
        # Re-run to recover traces is wasteful; instead rebuild from runs.
        return None

    def test_linear_filter_ordering(self):
        img = lf.make_image(64, 24)
        dev_cm, dev_ocl = Device(), Device()
        lf.run_cm(dev_cm, img)
        lf.run_ocl(dev_ocl, img)
        cm_traces = dev_cm.runs[0].timing
        # Compare using stored timing (analytic) and event sim on fresh
        # traces gathered through a private capture.
        cm_ev = _replay(lambda d: lf.run_cm(d, img))
        ocl_ev = _replay(lambda d: lf.run_ocl(d, img))
        assert cm_ev < ocl_ev

    def test_transpose_ordering(self):
        # Needs enough threads that latency is occupancy-hidden; tiny
        # transposes are latency-bound and favour neither model.
        a = tp.make_matrix(512)
        cm_ev = _replay(lambda d: tp.run_cm(d, a))
        ocl_ev = _replay(lambda d: tp.run_ocl(d, a))
        assert cm_ev < ocl_ev


def _replay(fn) -> float:
    """Run a workload capturing traces, then event-simulate them."""
    captured = []

    class CapturingDevice(Device):
        def submit(self, traces, name):
            captured.append(list(traces))
            return super().submit(traces, name)

    dev = CapturingDevice()
    fn(dev)
    total = 0.0
    for traces in captured:
        total += simulate(traces, dev.machine).cycles
    return total
