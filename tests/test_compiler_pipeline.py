"""End-to-end compiler pipeline: Fig. 4 codegen and differential tests."""

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.memory.surfaces import BufferSurface, Image2DSurface
from repro.workloads import linear_filter as lf


def _linear_body(cmx, inbuf, outbuf, hpos, vpos):
    in_m = cmx.matrix(np.uint8, 8, 32)
    cmx.read(inbuf, hpos * 24, vpos * 6, in_m)
    m = cmx.matrix(np.float32, 6, 24)
    m.assign(in_m.select(6, 1, 24, 1, 1, 3))
    for (i, j) in [(0, 0), (0, 3), (0, 6), (1, 0), (1, 6),
                   (2, 0), (2, 3), (2, 6)]:
        m += in_m.select(6, 1, 24, 1, i, j)
    out = cmx.matrix(np.uint8, 6, 24)
    out.assign(m * np.float32(0.1111))
    cmx.write(outbuf, hpos * 24 + 3, vpos * 6 + 1, out)


@pytest.fixture(scope="module")
def linear_kernel():
    return compile_kernel(_linear_body, "linear",
                          [("inbuf", True), ("outbuf", True)],
                          ["hpos", "vpos"])


class TestFig4Codegen:
    def test_select_compiles_to_nine_simd16_movs(self, linear_kernel):
        """The 6x24 uchar->float select is exactly 9 SIMD16 movs (Fig. 4)."""
        movs = [i for i in linear_kernel.program
                if i.opcode.value == "mov" and i.dst is not None
                and i.dst.dtype.name == "f"
                and i.srcs and getattr(i.srcs[0], "dtype", None)
                and i.srcs[0].dtype.name == "ub"]
        assert len(movs) == 9
        assert all(i.exec_size == 16 for i in movs)

    def test_row_spanning_regions_used(self, linear_kernel):
        """Chunks that span two 24-byte rows legalize as <16;8,1>."""
        asm = linear_kernel.asm()
        assert "<16;8,1>:ub" in asm

    def test_adds_bale_in_byte_regions(self, linear_kernel):
        adds = [i for i in linear_kernel.program
                if i.opcode.value == "add" and i.exec_size == 16]
        assert len(adds) == 8 * 9
        assert all(any(getattr(s, "dtype", None) is not None
                       and s.dtype.name == "ub" for s in i.srcs)
                   for i in adds)

    def test_no_spills(self, linear_kernel):
        assert linear_kernel.allocation.spills == 0

    def test_differential_vs_reference(self, linear_kernel):
        img = lf.make_image(16, 12, seed=3)
        src = Image2DSurface(img.copy(), bytes_per_pixel=3)
        dst = Image2DSurface(img.copy(), bytes_per_pixel=3)
        for vpos in range(2):
            for hpos in range(2):
                linear_kernel.run([src, dst],
                                  {"hpos": hpos, "vpos": vpos})
        assert np.array_equal(dst.to_numpy(), lf.reference(img))


class TestSmallKernels:
    def test_vector_add_kernel(self):
        def body(cmx, a, b, out):
            va = cmx.vector(np.float32, 16)
            vb = cmx.vector(np.float32, 16)
            cmx.read(a, 0, va)
            cmx.read(b, 0, vb)
            vo = cmx.vector(np.float32, 16)
            vo.assign(va + vb)
            cmx.write(out, 0, vo)

        k = compile_kernel(body, "vadd",
                           [("a", False), ("b", False), ("out", False)])
        a = BufferSurface(np.arange(16, dtype=np.float32))
        b = BufferSurface(np.full(16, 2.0, dtype=np.float32))
        out = BufferSurface(np.zeros(16, dtype=np.float32))
        k.run([a, b, out])
        assert out.to_numpy().tolist() == [i + 2.0 for i in range(16)]

    def test_strided_select_writeback(self):
        def body(cmx, buf):
            v = cmx.vector(np.int32, 16)
            cmx.read(buf, 0, v)
            v.select(8, 2, 0).assign(v.select(8, 2, 1))
            cmx.write(buf, 0, v)

        k = compile_kernel(body, "swap", [("buf", False)])
        buf = BufferSurface(np.arange(16, dtype=np.int32))
        k.run([buf])
        host = buf.to_numpy()
        assert host.tolist() == [1, 1, 3, 3, 5, 5, 7, 7,
                                 9, 9, 11, 11, 13, 13, 15, 15]

    def test_merge_sel_kernel(self):
        def body(cmx, buf, out):
            v = cmx.vector(np.int32, 8)
            cmx.read(buf, 0, v)
            r = cmx.vector(np.int32, 8, np.zeros(8))
            r.merge(v, v > 3)
            cmx.write(out, 0, r)

        k = compile_kernel(body, "merge", [("buf", False), ("out", False)])
        buf = BufferSurface(np.asarray([1, 5, 2, 6, 3, 7, 0, 9],
                                       dtype=np.int32))
        out = BufferSurface(np.zeros(8, dtype=np.int32))
        k.run([buf, out])
        assert out.to_numpy().tolist() == [0, 5, 0, 6, 0, 7, 0, 9]

    def test_gather_scatter_kernel(self):
        def body(cmx, src, dst):
            idx = cmx.vector(np.uint32, 8, [7, 6, 5, 4, 3, 2, 1, 0])
            v = cmx.vector(np.float32, 8)
            cmx.read_scattered(src, 0, idx, v)
            cmx.write_scattered(dst, 0, np.arange(8), v)

        k = compile_kernel(body, "rev", [("src", False), ("dst", False)])
        src = BufferSurface(np.arange(8, dtype=np.float32))
        dst = BufferSurface(np.zeros(8, dtype=np.float32))
        k.run([src, dst])
        assert dst.to_numpy().tolist() == list(range(7, -1, -1))

    def test_replicate_transpose_kernel(self):
        """The paper's 2x2 transpose compiled end to end."""
        def body(cmx, src, dst):
            v = cmx.vector(np.float32, 4)
            cmx.read(src, 0, v)
            v0 = v.replicate(2, 1, 2, 0, 0)
            v1 = v.replicate(2, 1, 2, 0, 2)
            v2 = cmx.vector(np.float32, 4)
            v2.merge(v0, v1, [1, 0, 1, 0])
            cmx.write(dst, 0, v2)

        k = compile_kernel(body, "t2", [("src", False), ("dst", False)])
        src = BufferSurface(np.asarray([1, 2, 3, 4], dtype=np.float32))
        dst = BufferSurface(np.zeros(4, dtype=np.float32))
        k.run([src, dst])
        assert dst.to_numpy().tolist() == [1.0, 3.0, 2.0, 4.0]

    def test_optimization_pipeline_shrinks_code(self):
        def body(cmx, out):
            a = cmx.vector(np.int32, 16, np.arange(16))
            b = a + 1          # constant-foldable
            c = b * 2
            _dead = c - 5      # dead
            cmx.write(out, 0, c)

        k_opt = compile_kernel(body, "opt", [("out", False)])
        k_raw = compile_kernel(body, "raw", [("out", False)],
                               optimize=False)
        assert k_opt.num_instructions < k_raw.num_instructions
        out = BufferSurface(np.zeros(16, dtype=np.int32))
        k_opt.run([out])
        assert out.to_numpy().tolist() == [(i + 1) * 2 for i in range(16)]


class TestRegisterAllocation:
    def test_spill_path(self):
        """More live vectors than the GRF holds forces scratch spills."""
        n_vecs = 80  # 80 x 64B simultaneously-live vectors > 124 free GRFs

        def body(cmx, src, out):
            vecs = []
            for i in range(n_vecs):
                v = cmx.vector(np.float32, 16)
                cmx.read(src, i * 64, v)  # defined early...
                vecs.append(v)
            acc = cmx.vector(np.float32, 16, np.zeros(16))
            for v in reversed(vecs):     # ...consumed late: all live at once
                acc += v
            cmx.write(out, 0, acc)

        k = compile_kernel(body, "spilly", [("src", False), ("out", False)],
                           optimize=False)
        assert k.allocation.spills > 0
        src = BufferSurface(
            np.repeat(np.arange(n_vecs, dtype=np.float32), 16))
        out = BufferSurface(np.zeros(16, dtype=np.float32))
        k.run([src, out])
        assert out.to_numpy().tolist() == [float(sum(range(n_vecs)))] * 16

    def test_allocations_do_not_overlap(self, linear_kernel):
        alloc = linear_kernel.allocation
        spans = []
        for vreg in linear_kernel.visa.vregs:
            base = alloc.grf_offset.get(vreg.id)
            if base is None:
                continue
            spans.append((base, base + vreg.size_bytes, vreg.id))
        # Overlaps are only legal between vregs with disjoint live ranges;
        # here we just sanity-check the allocator returned in-bounds slots.
        for lo, hi, _ in spans:
            assert 32 <= lo and hi <= 124 * 32
