"""Divergent control flow through the compile-and-dispatch ladder.

End-to-end coverage for the masked-CF pipeline: the trace-mode
``simd_if`` / ``simd_while`` frontend, the structured-CF opcodes in the
compiled program, sequential-vs-wide bit-identity (results *and* every
simulated-timing field), the sanitizer's first-launch pass over a
divergent kernel, cross-device race-verdict adoption, and the compiled
bitonic / k-means workloads built on all of the above.
"""

import dataclasses

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.compiler.frontend import TraceError, trace_kernel
from repro.isa.instructions import CF_OPCODES
from repro.isa.jit import jit_eligible
from repro.isa.wide import wide_eligible
from repro.memory.surfaces import BufferSurface
from repro.sim.device import Device
from repro.workloads import bitonic, kmeans

W = 16
NT = 8
SIG = [("buf", False), ("out", False)]


def _divergent_body(cmx, buf, out, t):
    """A data-dependent loop plus an if/else — both divergence forms."""
    lane = cmx.vector(np.int32, W, np.arange(W, dtype=np.int32))
    idx = cmx.vector(np.int32, W)
    idx.assign(lane + t * W)
    x = cmx.vector(np.int32, W)
    cmx.read_scattered(buf, 0, idx, x)
    acc = cmx.vector(np.int32, W, 0)
    k = cmx.vector(np.int32, W)
    k.assign(x & 7)

    def loop():
        acc.assign(acc + k)
        k.assign(k - 1)
        return k > 0

    cmx.simd_while(loop)

    with cmx.simd_if(x < 40) as br:
        acc.assign(acc + 100)
    with br.orelse():
        acc.assign(acc + 200)
    cmx.write_scattered(out, 0, idx, acc)


def _oracle(data):
    x = data.astype(np.int64)
    k = (x & 7).copy()
    acc = np.zeros_like(k)
    active = np.ones(x.shape, bool)
    while active.any():                       # do-while per lane
        acc[active] += k[active]
        k[active] -= 1
        active &= k > 0
    acc += np.where(x < 40, 100, 200)
    return acc.astype(np.int32)


def _input(seed=42):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 80, NT * W).astype(np.int32)


class TestTraceCF:
    def test_trace_emits_structured_markers(self):
        fn = trace_kernel(_divergent_body, "cf_trace", SIG, ["t"])
        ops = [i.op for i in fn.instrs]
        for marker in ("simd.do", "simd.while", "simd.if", "simd.else",
                       "simd.endif"):
            assert marker in ops, f"missing {marker} marker"
        # the else-rewrite must leave regions balanced: every if has
        # exactly one endif, and do/while pair up
        assert ops.count("simd.if") == ops.count("simd.endif")
        assert ops.count("simd.do") == ops.count("simd.while")

    def test_return_inside_divergent_region_rejected(self):
        def body(cmx, buf):
            v = cmx.vector(np.int32, W, 0)
            cmx.simd_if(v < 1).__enter__()   # never exited

        with pytest.raises(TraceError):
            trace_kernel(body, "cf_unbalanced", [("buf", False)])


class TestCompiledDivergentKernel:
    def test_cf_opcodes_present_wide_admits_jit_declines(self):
        kern = compile_kernel(_divergent_body, "cf_elig", SIG, ["t"])
        assert any(i.opcode in CF_OPCODES for i in kern.program)
        assert wide_eligible(kern.program)
        # the JIT tier has no CF support: it must decline statically,
        # leaving dispatch to fall back to the wide interpreter.
        assert not jit_eligible(kern.program)

    def test_functional_matches_oracle(self):
        kern = compile_kernel(_divergent_body, "cf_func", SIG, ["t"])
        data = _input()
        src = BufferSurface(data.copy().view(np.uint8))
        dst = BufferSurface(np.zeros(NT * W, np.int32).view(np.uint8))
        for t in range(NT):
            kern.run([src, dst], {"t": t})
        got = dst.to_numpy().view(np.int32)
        assert np.array_equal(got, _oracle(data))

    def test_wide_matches_sequential_bit_identical(self):
        data = _input()
        expect = _oracle(data)
        runs = {}
        for wide in (False, True):
            dev = Device()
            b_in = dev.buffer(data.copy())
            b_out = dev.buffer(np.zeros(NT * W, np.int32))
            kern = dev.compile(_divergent_body, "cf_dev", SIG, ["t"])
            run = dev.run_compiled(kern, grid=(NT,),
                                   surfaces=[b_in, b_out],
                                   scalars=lambda tid: {"t": tid[0]},
                                   name="cf_dev", wide=wide,
                                   validate="off")
            assert np.array_equal(b_out.to_numpy().view(np.int32), expect)
            runs[wide] = run
        assert runs[True].path == "wide"
        seq_t, wide_t = runs[False].timing, runs[True].timing
        for f in dataclasses.fields(seq_t):
            assert getattr(seq_t, f.name) == getattr(wide_t, f.name), \
                f"timing field {f.name} diverged on the wide path"


class TestSanitizedCF:
    def _launch(self, dev, kern, data):
        b_in = dev.buffer(data.copy())
        b_out = dev.buffer(np.zeros(NT * W, np.int32))
        run = dev.run_compiled(kern, grid=(NT,), surfaces=[b_in, b_out],
                               scalars=lambda tid: {"t": tid[0]},
                               name="cf_san", validate="first")
        return run, b_out.to_numpy().view(np.int32)

    def test_first_launch_sanitized_then_wide(self):
        dev = Device()
        data = _input(seed=1)
        kern = dev.compile(_divergent_body, "cf_san", SIG, ["t"])
        r1, out1 = self._launch(dev, kern, data)
        r2, out2 = self._launch(dev, kern, data)
        res = dev.sanitizer_results[0]
        assert res.verdict.race_free
        assert res.uninit_total == 0
        assert r1.path != "wide" and r2.path == "wide"
        assert np.array_equal(out1, _oracle(data))
        assert np.array_equal(out2, out1)
        # sanitizing is an observability mode, never a timing change
        for f in dataclasses.fields(r1.timing):
            assert getattr(r1.timing, f.name) == getattr(r2.timing, f.name)

    def test_verdict_adoption_skips_sanitize(self):
        dev = Device()
        data = _input(seed=1)
        kern = dev.compile(_divergent_body, "cf_san", SIG, ["t"])
        self._launch(dev, kern, data)
        fresh = dev.drain_race_verdicts()
        assert fresh and fresh[0][0] == "cf_san"
        assert dev.drain_race_verdicts() == []   # drained exactly once

        dev2 = Device()
        kern2 = dev2.compile(_divergent_body, "cf_san", SIG, ["t"])
        dev2.adopt_race_verdict("cf_san", fresh[0][1])
        run, out = self._launch(dev2, kern2, data)
        assert not dev2.sanitizer_results, \
            "adopted verdict must skip the sanitized first launch"
        assert run.path == "wide"
        assert np.array_equal(out, _oracle(data))


class TestCompiledDivergentWorkloads:
    def test_bitonic_compiled_sorts_and_matches_across_tiers(self):
        keys = bitonic.make_input(6, seed=3)       # n = 64
        expect = np.sort(keys)
        outs = {}
        for wide in (False, True):
            dev = Device()
            outs[wide] = bitonic.run_cm_bitonic_compiled(
                dev, keys, wide=wide)
            assert {r.path for r in dev.runs} == \
                ({"wide"} if wide else {"sequential"})
        assert np.array_equal(outs[False], expect)
        assert np.array_equal(outs[True], expect)

    def test_bitonic_eager_matches_compiled(self):
        keys = bitonic.make_input(6, seed=9)
        got = bitonic.run_cm_bitonic_eager(Device(), keys)
        assert np.array_equal(got, np.sort(keys))

    def test_kmeans_compiled_matches_reference(self):
        pts, _ = kmeans.make_points(128, k=4, seed=2)
        rng = np.random.default_rng(0)
        c0 = pts[rng.choice(128, 4, replace=False)].copy()
        ref = kmeans.reference(pts, c0, iterations=2)
        for wide in (False, True):
            got = kmeans.run_cm_kmeans_compiled(
                Device(), pts, c0, iterations=2, wide=wide)
            assert np.allclose(got, ref, atol=0.5)

    def test_kmeans_eager_matches_reference(self):
        pts, _ = kmeans.make_points(128, k=4, seed=2)
        rng = np.random.default_rng(0)
        c0 = pts[rng.choice(128, 4, replace=False)].copy()
        ref = kmeans.reference(pts, c0, iterations=1)
        got = kmeans.run_cm_kmeans_eager_divergent(
            Device(), pts, c0, iterations=1)
        assert np.allclose(got, ref, atol=0.5)
