"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro import Device, cm, ocl
from repro.cm.vector import CMTypeError
from repro.compiler import compile_kernel
from repro.compiler.visa import CompileError
from repro.isa.dtypes import D, F
from repro.isa.executor import FunctionalExecutor
from repro.isa.grf import RegOperand
from repro.isa.instructions import (
    Immediate, Instruction, MathFn, Opcode,
)
from repro.isa.regions import Region


class TestExecutorEdges:
    def test_all_math_functions(self):
        ex = FunctionalExecutor()
        ex.grf.write_bytes(32, np.asarray([4.0, 0.25, 1.0, 2.0],
                                          dtype=np.float32))
        cases = {
            MathFn.INV: [0.25, 4.0, 1.0, 0.5],
            MathFn.SQRT: [2.0, 0.5, 1.0, np.sqrt(2.0)],
            MathFn.RSQRT: [0.5, 2.0, 1.0, 1 / np.sqrt(2.0)],
            MathFn.LOG: [2.0, -2.0, 0.0, 1.0],
            MathFn.EXP: [16.0, 2 ** 0.25, 2.0, 4.0],
        }
        for fn, expect in cases.items():
            ex.execute(Instruction(
                Opcode.MATH, 4, RegOperand(2, 0, F),
                [RegOperand(1, 0, F, Region(4, 4, 1))], math_fn=fn))
            got = ex.grf.dump_reg(2, F)[:4]
            assert got == pytest.approx(expect, rel=1e-5), fn

    def test_pow_and_divides(self):
        ex = FunctionalExecutor()
        ex.grf.write_bytes(32, np.asarray([2.0, 3.0], dtype=np.float32))
        ex.execute(Instruction(
            Opcode.MATH, 2, RegOperand(2, 0, F),
            [RegOperand(1, 0, F, Region(2, 2, 1)), Immediate(2.0, F)],
            math_fn=MathFn.POW))
        assert ex.grf.dump_reg(2, F)[:2].tolist() == [4.0, 9.0]

    def test_integer_overflow_wraps(self):
        ex = FunctionalExecutor()
        ex.grf.write_bytes(32, np.asarray([2**31 - 1], dtype=np.int32))
        ex.execute(Instruction(
            Opcode.ADD, 1, RegOperand(2, 0, D),
            [RegOperand(1, 0, D), Immediate(1, D)]))
        assert ex.grf.dump_reg(2, D)[0] == -2**31

    def test_shift_ops(self):
        ex = FunctionalExecutor()
        ex.grf.write_bytes(32, np.asarray([8, 16], dtype=np.int32))
        for op, expect in ((Opcode.SHL, [32, 64]), (Opcode.SHR, [2, 4]),
                           (Opcode.ASR, [2, 4])):
            ex.execute(Instruction(
                op, 2, RegOperand(2, 0, D),
                [RegOperand(1, 0, D, Region(2, 2, 1)), Immediate(2, D)]))
            assert ex.grf.dump_reg(2, D)[:2].tolist() == expect

    def test_avg_instruction(self):
        ex = FunctionalExecutor()
        ex.grf.write_bytes(32, np.asarray([1, 4], dtype=np.int32))
        ex.execute(Instruction(
            Opcode.AVG, 2, RegOperand(2, 0, D),
            [RegOperand(1, 0, D, Region(2, 2, 1)), Immediate(2, D)]))
        assert ex.grf.dump_reg(2, D)[:2].tolist() == [2, 3]


class TestCMErrorPaths:
    def test_select_negative_offset(self):
        v = cm.vector(cm.int32, 8)
        with pytest.raises(IndexError):
            v.select(4, 1, -1)

    def test_operand_type_rejected(self):
        v = cm.vector(cm.int32, 4)
        with pytest.raises(CMTypeError):
            _ = v + "nope"

    def test_reduction_of_wrong_type(self):
        with pytest.raises(TypeError):
            cm.cm_min("a", "b")

    def test_format_on_strided_ref_rejected(self):
        v = cm.vector(cm.int32, 16)
        strided = v.select(8, 2, 0)
        with pytest.raises(CMTypeError):
            strided.format(cm.uchar)

    def test_intrinsic_requires_contiguous(self):
        dev = Device()
        buf = dev.buffer(np.zeros(64, dtype=np.uint32))

        @cm.cm_kernel
        def k():
            v = cm.vector(cm.uint, 16)
            cm.read(buf, 0, v.select(8, 2, 0))

        with pytest.raises(TypeError):
            dev.run_cm(k, grid=(1,))

    def test_scalar_index_out_of_range(self):
        v = cm.vector(cm.int32, 4)
        with pytest.raises(IndexError):
            _ = v[7]


class TestCompilerErrorPaths:
    def test_unsupported_python_value(self):
        def body(cmx, buf):
            v = cmx.vector(np.int32, 4, np.zeros(4))
            v.assign(object())

        from repro.compiler.frontend import TraceError

        with pytest.raises(TraceError):
            compile_kernel(body, "k", [("buf", False)])

    def test_too_large_to_spill(self):
        def body(cmx, src, out):
            # 40 live 256-byte vectors: too big for the staging slots.
            vecs = []
            for i in range(40):
                v = cmx.vector(np.float32, 64)
                cmx.read(src, i * 256, v)
                vecs.append(v)
            acc = cmx.vector(np.float32, 64, np.zeros(64))
            for v in reversed(vecs):
                acc += v
            cmx.write(out, 0, acc)

        with pytest.raises(CompileError):
            compile_kernel(body, "k", [("src", False), ("out", False)])


class TestOCLEdges:
    def test_zero_size_slm_kernel_without_slm_param(self):
        dev = Device()
        ran = []

        def k():
            ran.append(True)

        ocl.enqueue(dev, k, 16, 16)
        assert ran == [True]

    def test_masked_everything_off(self):
        dev = Device()
        buf = dev.buffer(np.zeros(16, dtype=np.uint32))

        def k():
            gid = ocl.get_global_id(0)
            never = gid > 100
            v = ocl.load(buf, gid, dtype=np.uint32, mask=never)
            ocl.store(buf, gid, v + 1, mask=never)

        ocl.enqueue(dev, k, 16, 16)
        assert buf.to_numpy().tolist() == [0] * 16

    def test_shuffle_wraps_indices(self):
        dev = Device()
        got = []

        def k():
            lane = ocl.get_sub_group_local_id()
            v = ocl.sub_group_shuffle(lane, lane + 16)  # wraps mod 16
            got.append(v.to_numpy().tolist())

        ocl.enqueue(dev, k, 16, 16)
        assert got[0] == list(range(16))
