"""Shared benchmark plumbing.

Every benchmark runs a paired CM/OpenCL workload on the simulated Gen11
device, verifies correctness against the numpy reference, and reports
the paper's Figure 5 metric — ``speedup = OpenCL time / CM time`` — in
``extra_info`` and on stdout.  pytest-benchmark's own timer measures the
simulation's host wall time, which is meaningless for the reproduction;
the simulated microseconds are what EXPERIMENTS.md records.
"""

import numpy as np
import pytest

from repro.workloads.common import run_and_time


@pytest.fixture
def compare(benchmark, capsys):
    """Run a CM/OCL pair once, check both, report the simulated speedup."""

    def _run(name, cm_fn, ocl_fn, reference, paper, check=None,
             extra_runs=()):
        check = check or (lambda out: np.allclose(out, reference,
                                                  rtol=1e-3, atol=1e-3))
        results = {}

        def once():
            results["cm"] = run_and_time("cm", cm_fn)
            results["ocl"] = run_and_time("ocl", ocl_fn)
            for label, fn in extra_runs:
                results[label] = run_and_time(label, fn)

        benchmark.pedantic(once, rounds=1, iterations=1)
        cm_run, ocl_run = results["cm"], results["ocl"]
        assert check(cm_run.output), f"{name}: CM output wrong"
        assert check(ocl_run.output), f"{name}: OpenCL output wrong"
        speedup = ocl_run.total_time_us / cm_run.total_time_us
        benchmark.extra_info.update({
            "workload": name,
            "cm_us": round(cm_run.total_time_us, 1),
            "ocl_us": round(ocl_run.total_time_us, 1),
            "speedup_ocl_over_cm": round(speedup, 2),
            "paper_speedup": paper,
            "cm_launches": cm_run.launches,
            "ocl_launches": ocl_run.launches,
        })
        for label in results:
            if label not in ("cm", "ocl"):
                benchmark.extra_info[f"{label}_us"] = round(
                    results[label].total_time_us, 1)
        with capsys.disabled():
            print(f"\n  [{name}] cm={cm_run.total_time_us:9.1f}us "
                  f"ocl={ocl_run.total_time_us:9.1f}us "
                  f"speedup={speedup:5.2f}x (paper: {paper})")
        return results

    return _run
