"""Machine scaling: the same kernels across machine generations.

The paper's artifact notes results should hold on "any Intel GPU above
Gen9".  This bench runs the linear filter and SGEMM on the Gen9/Gen11
models plus the natively-32-wide SIMD32 APL machine and checks that
(a) CM wins on every machine, (b) the bigger machine is faster, and
(c) the machines genuinely *disagree* about the best kernel variant —
the fact that makes per-machine autotuning (``repro.tune``) worth
doing rather than a one-time constant fold.
"""

import numpy as np
import pytest

from repro import GEN9_SKL, GEN11_ICL, SIMD32_APL
from repro.tune import tune
from repro.workloads import gemm, linear_filter as lf
from repro.workloads.common import run_and_time


@pytest.mark.parametrize("machine,label", [(GEN9_SKL, "Gen9 SKL"),
                                           (GEN11_ICL, "Gen11 ICL"),
                                           (SIMD32_APL, "SIMD32 APL")])
def test_linear_filter_scales(benchmark, capsys, machine, label):
    img = lf.make_image(256, 192)
    ref = lf.reference(img)
    out = {}

    def once():
        out["cm"] = run_and_time("cm", lambda d: lf.run_cm(d, img),
                                 machine=machine)
        out["ocl"] = run_and_time("ocl", lambda d: lf.run_ocl(d, img),
                                  machine=machine)

    benchmark.pedantic(once, rounds=1, iterations=1)
    assert np.array_equal(out["cm"].output, ref)
    speedup = out["ocl"].total_time_us / out["cm"].total_time_us
    benchmark.extra_info.update({
        "machine": label,
        "cm_us": round(out["cm"].total_time_us, 1),
        "speedup": round(speedup, 2),
    })
    with capsys.disabled():
        print(f"\n  [linear on {label}] cm={out['cm'].total_time_us:.1f}us "
              f"speedup={speedup:.2f}x")
    assert speedup > 1.0


def test_gen11_beats_gen9(benchmark, capsys):
    a, b, c = gemm.make_inputs(256, 256, 128)
    out = {}

    def once():
        out["skl"] = run_and_time(
            "skl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=GEN9_SKL)
        out["icl"] = run_and_time(
            "icl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=GEN11_ICL)

    benchmark.pedantic(once, rounds=1, iterations=1)
    skl, icl = out["skl"].kernel_time_us, out["icl"].kernel_time_us
    benchmark.extra_info.update({"skl_us": round(skl, 1),
                                 "icl_us": round(icl, 1)})
    with capsys.disabled():
        print(f"\n  [sgemm scaling] Gen9={skl:.1f}us Gen11={icl:.1f}us "
              f"({skl / icl:.2f}x)")
    assert skl > icl


def test_apl_beats_gen11_on_sgemm(benchmark, capsys):
    """The 32-wide APL model (768 threads, 32 fp32 lanes/EU) outruns
    Gen11 on the same register-blocked SGEMM."""
    a, b, c = gemm.make_inputs(256, 256, 128)
    out = {}

    def once():
        out["icl"] = run_and_time(
            "icl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=GEN11_ICL)
        out["apl"] = run_and_time(
            "apl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=SIMD32_APL)

    benchmark.pedantic(once, rounds=1, iterations=1)
    icl, apl = out["icl"].kernel_time_us, out["apl"].kernel_time_us
    benchmark.extra_info.update({"icl_us": round(icl, 1),
                                 "apl_us": round(apl, 1)})
    with capsys.disabled():
        print(f"\n  [sgemm scaling] Gen11={icl:.1f}us APL={apl:.1f}us "
              f"({icl / apl:.2f}x)")
    assert icl > apl


def test_machines_prefer_different_transpose_variants(benchmark, capsys):
    """The autotuned transpose winner is machine-dependent: Gen11's 512
    threads favor small register tiles, while the SIMD32 APL machine
    (768 threads, 32-bank SLM) tunes into the SLM path at full
    dispatch width.  This is the divergence the per-machine tuned
    registry exists to capture."""
    res = {}

    def once():
        res["icl"] = tune("transpose", GEN11_ICL)
        res["apl"] = tune("transpose", SIMD32_APL)

    benchmark.pedantic(once, rounds=1, iterations=1)
    icl, apl = res["icl"], res["apl"]
    benchmark.extra_info.update({
        "icl_winner": icl.best_label, "apl_winner": apl.best_label,
        "icl_speedup": round(icl.speedup, 3),
        "apl_speedup": round(apl.speedup, 3),
    })
    with capsys.disabled():
        print(f"\n  [transpose tuning] Gen11 -> {icl.best_label} "
              f"({icl.speedup:.2f}x)  APL -> {apl.best_label} "
              f"({apl.speedup:.2f}x)")
    assert icl.best_point != apl.best_point
    assert icl.best_point["use_slm"] == 0
    assert apl.best_point["use_slm"] == 1
