"""Machine scaling: the same kernels on Gen9 SKL vs Gen11 ICL.

The paper's artifact notes results should hold on "any Intel GPU above
Gen9".  This bench runs the linear filter and SGEMM on both machine
models and checks that (a) CM wins on both and (b) the bigger machine
is faster.
"""

import numpy as np
import pytest

from repro import GEN9_SKL, GEN11_ICL
from repro.workloads import gemm, linear_filter as lf
from repro.workloads.common import run_and_time


@pytest.mark.parametrize("machine,label", [(GEN9_SKL, "Gen9 SKL"),
                                           (GEN11_ICL, "Gen11 ICL")])
def test_linear_filter_scales(benchmark, capsys, machine, label):
    img = lf.make_image(256, 192)
    ref = lf.reference(img)
    out = {}

    def once():
        out["cm"] = run_and_time("cm", lambda d: lf.run_cm(d, img),
                                 machine=machine)
        out["ocl"] = run_and_time("ocl", lambda d: lf.run_ocl(d, img),
                                  machine=machine)

    benchmark.pedantic(once, rounds=1, iterations=1)
    assert np.array_equal(out["cm"].output, ref)
    speedup = out["ocl"].total_time_us / out["cm"].total_time_us
    benchmark.extra_info.update({
        "machine": label,
        "cm_us": round(out["cm"].total_time_us, 1),
        "speedup": round(speedup, 2),
    })
    with capsys.disabled():
        print(f"\n  [linear on {label}] cm={out['cm'].total_time_us:.1f}us "
              f"speedup={speedup:.2f}x")
    assert speedup > 1.0


def test_gen11_beats_gen9(benchmark, capsys):
    a, b, c = gemm.make_inputs(256, 256, 128)
    out = {}

    def once():
        out["skl"] = run_and_time(
            "skl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=GEN9_SKL)
        out["icl"] = run_and_time(
            "icl", lambda d: gemm.run_cm_sgemm(d, a, b, c),
            machine=GEN11_ICL)

    benchmark.pedantic(once, rounds=1, iterations=1)
    skl, icl = out["skl"].kernel_time_us, out["icl"].kernel_time_us
    benchmark.extra_info.update({"skl_us": round(skl, 1),
                                 "icl_us": round(icl, 1)})
    with capsys.disabled():
        print(f"\n  [sgemm scaling] Gen9={skl:.1f}us Gen11={icl:.1f}us "
              f"({skl / icl:.2f}x)")
    assert skl > icl
