"""Batch-execution engine: repeated-launch wall-clock microbenchmark.

Unlike the Figure 5 benchmarks (which report *simulated* microseconds),
this one measures *host* wall time — the cost of the simulator itself —
for a workload the paper's runtime hits constantly: re-enqueueing the
same kernel over a large grid.

Two paths run ``LAUNCHES`` launches of a 128-thread SGEMM grid each:

- **seed**: what the repo did before the batch engine — a fresh
  ``compile_kernel`` per launch, then one throwaway
  ``FunctionalExecutor`` per hardware thread via ``CompiledKernel.run``.
  (The program-scoped ``PlanTable`` sped this baseline up too — plans
  are now built once per program instead of once per executor — so the
  bar is measured against a *faster* seed than the original.)
- **batched**: ``Device.compile`` (every launch after the first is a
  kernel-cache hit) plus ``Device.run_compiled`` (default dispatch: the
  first launch runs sequentially under the race sanitizer to certify
  lockstep execution, after which launches take the JIT megakernel
  tier).

The batched path must be at least 2x faster even though it does
strictly more work (full ``KernelTiming`` per launch plus the one-time
race certification and megakernel compile; the seed path computes no
timing and never validates).  ``LAUNCHES`` is sized so those one-time
costs amortize the way a serving process would see them.
"""

import time

import numpy as np

from repro.compiler import compile_kernel
from repro.sim import Device
from repro.workloads import gemm

BM, BN, K = 8, 16, 8
M = N = 128
LAUNCHES = 10
MIN_SPEEDUP = 2.0
_SIG = [("abuf", True), ("bbuf", True), ("cbuf", True)]


def _gemm_body(cmx, abuf, bbuf, cbuf, tx, ty):
    row0 = ty * BM
    col0 = tx * BN
    atile = cmx.matrix(np.float32, BM, K)
    cmx.read(abuf, 0, row0, atile)
    btile = cmx.matrix(np.float32, K, BN)
    cmx.read(bbuf, col0 * 4, 0, btile)
    acc = cmx.matrix(np.float32, BM, BN, np.zeros(BM * BN, np.float32))
    for kk in range(K):
        a_bcast = atile.replicate(BM, K, BN, 0, kk)
        b_bcast = btile.replicate(BM, 0, BN, 1, kk * BN)
        acc += a_bcast * b_bcast
    ctile = cmx.matrix(np.float32, BM, BN)
    cmx.read(cbuf, col0 * 4, row0, ctile)
    out = cmx.matrix(np.float32, BM, BN)
    out.assign(acc + ctile * np.float32(0.0))
    cmx.write(cbuf, col0 * 4, row0, out)


def _bind(dev, a, b, c):
    return (dev.image2d(a.copy(), bytes_per_pixel=4),
            dev.image2d(b.copy(), bytes_per_pixel=4),
            dev.image2d(c.copy(), bytes_per_pixel=4))


def _seed_path(a, b, c, grid):
    """Per-launch recompile, per-thread executor (the pre-engine path)."""
    t0 = time.perf_counter()
    dev = Device()
    for _ in range(LAUNCHES):
        kern = compile_kernel(_gemm_body, "gemm_batch", _SIG, ["tx", "ty"])
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        for ty in range(grid[1]):
            for tx in range(grid[0]):
                kern.run([abuf, bbuf, cbuf], {"tx": tx, "ty": ty})
    return time.perf_counter() - t0, cbuf.to_numpy().copy()


def _batch_path(a, b, c, grid):
    """Cached compile + pooled streaming dispatch, full timing collected."""
    t0 = time.perf_counter()
    dev = Device()
    for _ in range(LAUNCHES):
        kern = dev.compile(_gemm_body, "gemm_batch", _SIG, ["tx", "ty"])
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                         scalars=lambda tid: {"tx": tid[0], "ty": tid[1]})
    return time.perf_counter() - t0, cbuf.to_numpy().copy(), dev


def _measure():
    a, b, c = gemm.make_inputs(M, N, K, seed=3)
    grid = (N // BN, M // BM)
    ref = gemm.reference(a, b, c, 1.0, 0.0)
    # Best of two trials per path smooths host-side jitter.
    seed_t = batch_t = float("inf")
    for _ in range(2):
        t, seed_out = _seed_path(a, b, c, grid)
        seed_t = min(seed_t, t)
        t, batch_out, dev = _batch_path(a, b, c, grid)
        batch_t = min(batch_t, t)
    assert np.allclose(seed_out, ref, atol=1e-3)
    assert np.array_equal(seed_out, batch_out)
    assert dev.profile.compile_cache_hits == LAUNCHES - 1
    assert dev.profile.compile_cache_misses == 1
    return seed_t, batch_t, dev


def test_batched_dispatch_speedup(benchmark, capsys):
    results = {}

    def once():
        results["seed"], results["batch"], results["dev"] = _measure()

    benchmark.pedantic(once, rounds=1, iterations=1)
    seed_t, batch_t = results["seed"], results["batch"]
    speedup = seed_t / batch_t
    benchmark.extra_info.update({
        "workload": f"sgemm {M}x{N}x{K} grid, {LAUNCHES} launches",
        "seed_ms": round(seed_t * 1e3, 1),
        "batch_ms": round(batch_t * 1e3, 1),
        "speedup_seed_over_batch": round(speedup, 2),
    })
    with capsys.disabled():
        print(f"\n  [batch engine] seed={seed_t * 1e3:7.1f}ms "
              f"batch={batch_t * 1e3:7.1f}ms speedup={speedup:5.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"batched dispatch only {speedup:.2f}x faster than the seed path "
        f"(required {MIN_SPEEDUP}x)")


if __name__ == "__main__":
    seed_t, batch_t, dev = _measure()
    print(f"seed:  {seed_t * 1e3:8.1f} ms")
    print(f"batch: {batch_t * 1e3:8.1f} ms")
    print(f"speedup: {seed_t / batch_t:.2f}x")
    print(dev.report())
