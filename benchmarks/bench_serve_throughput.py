"""Serving-layer policy comparison on a seeded mixed trace.

One fixed trace (mixed saxpy/scale/blur/sgemm requests, seeded arrival
process and input data) is replayed against a 4-device
:class:`~repro.serve.cluster.ServeCluster` under each scheduling
configuration:

- **fifo / round-robin, batching off** — the baseline: every request
  pays the full simulated launch overhead and kernels land on devices
  blind to what their caches hold.
- **least-loaded** — routes on accumulated simulated busy time.
- **cache-affinity** — routes a kernel back to the device that already
  compiled it.
- **fifo + dynamic batching** — same-kernel/same-grid requests coalesce
  into one dispatch: the head pays ``launch_overhead_us``, followers
  only ``pipelined_launch_us``.

Two properties are load-bearing (the ISSUE 3 acceptance criteria):

1. cache-affinity must show a strictly higher aggregate kernel-cache
   hit ratio than round-robin (which smears each kernel across all
   devices and cold-misses on each);
2. batching must cut total simulated launch overhead by at least
   ``MIN_OVERHEAD_REDUCTION`` vs the unbatched FIFO baseline.
"""

import time

from repro.serve import ServeCluster
from repro.serve.loadgen import build_trace

DEVICES = 4
REQUESTS = 160
SEED = 7
MIN_OVERHEAD_REDUCTION = 1.5

#: (label, policy, batching)
CONFIGS = [
    ("fifo-unbatched", "fifo", False),
    ("least-loaded", "least-loaded", False),
    ("cache-affinity", "cache-affinity", False),
    ("fifo-batched", "fifo", True),
]


def _replay(trace, policy, batching):
    t0 = time.perf_counter()
    with ServeCluster(num_devices=DEVICES, policy=policy,
                      batching=batching, queue_capacity=1024) as cluster:
        for entry in trace:
            cluster.submit(entry["workload"], entry["params"],
                           arrival_sim_us=entry["arrival_sim_us"])
        assert cluster.drain(timeout=300.0), f"{policy}: drain timed out"
        report = cluster.report()
    report["host_wall_s"] = time.perf_counter() - t0
    done = report["requests"]["done"]
    assert done == len(trace), \
        f"{policy}: {done}/{len(trace)} done, " \
        f"{report['requests']['failed']} failed"
    return report


def _measure():
    trace = build_trace(SEED, REQUESTS, "compiled", sim_rate_rps=25000.0)
    return {label: _replay(trace, policy, batching)
            for label, policy, batching in CONFIGS}


def _render(reports):
    lines = [
        f"  [serve] {REQUESTS} requests on {DEVICES} devices (seed {SEED})",
        f"  {'config':16s} {'hit%':>6s} {'overhead us':>12s} "
        f"{'sim p95 us':>11s} {'horizon us':>11s} {'req/s':>8s}",
    ]
    for label, rep in reports.items():
        lines.append(
            f"  {label:16s} {rep['kernel_cache']['hit_rate']:6.0%} "
            f"{rep['sim']['launch_overhead_us']:12.1f} "
            f"{rep['latency_sim_us']['p95']:11.1f} "
            f"{rep['sim']['horizon_us']:11.1f} "
            f"{rep['throughput_rps']:8.0f}")
    rr, aff = reports["fifo-unbatched"], reports["cache-affinity"]
    batched = reports["fifo-batched"]
    reduction = rr["sim"]["launch_overhead_us"] / \
        batched["sim"]["launch_overhead_us"]
    lines.append(
        f"  affinity hit ratio {aff['kernel_cache']['hit_rate']:.0%} vs "
        f"round-robin {rr['kernel_cache']['hit_rate']:.0%}; "
        f"batching cuts launch overhead {reduction:.2f}x "
        f"(avg batch {batched['sim']['avg_batch']:.2f})")
    return "\n".join(lines), reduction


def _check(reports):
    rr = reports["fifo-unbatched"]
    aff = reports["cache-affinity"]
    batched = reports["fifo-batched"]
    assert aff["kernel_cache"]["hit_rate"] > rr["kernel_cache"]["hit_rate"], (
        f"cache-affinity hit ratio {aff['kernel_cache']['hit_rate']:.2%} "
        f"not above round-robin {rr['kernel_cache']['hit_rate']:.2%}")
    reduction = rr["sim"]["launch_overhead_us"] / \
        batched["sim"]["launch_overhead_us"]
    assert reduction >= MIN_OVERHEAD_REDUCTION, (
        f"batching reduced simulated launch overhead only {reduction:.2f}x "
        f"(required {MIN_OVERHEAD_REDUCTION}x)")
    return reduction


def test_serve_policies(benchmark, capsys):
    results = {}

    def once():
        results.update(_measure())

    benchmark.pedantic(once, rounds=1, iterations=1)
    reduction = _check(results)
    rendered, _ = _render(results)
    benchmark.extra_info.update({
        "workload": f"{REQUESTS}-request mixed trace, {DEVICES} devices",
        "affinity_hit_rate": round(
            results["cache-affinity"]["kernel_cache"]["hit_rate"], 3),
        "round_robin_hit_rate": round(
            results["fifo-unbatched"]["kernel_cache"]["hit_rate"], 3),
        "overhead_reduction_batched": round(reduction, 2),
        "avg_batch": round(results["fifo-batched"]["sim"]["avg_batch"], 2),
    })
    with capsys.disabled():
        print("\n" + rendered)


if __name__ == "__main__":
    reports = _measure()
    _check(reports)
    print(_render(reports)[0])
