"""Sharded-cluster scaling: one process vs a multi-process fleet.

The same seeded request list (no arrival stamps — capacity-bound, the
saturation shape) is served twice:

- **single**: one :class:`~repro.serve.cluster.ServeCluster` with
  ``DEVICES_PER_SHARD`` devices;
- **sharded**: a :class:`~repro.serve.shard.ShardedCluster` of
  ``SHARDS`` worker processes, each hosting the same device count.

Two properties gate (the PR 8 acceptance criteria):

1. **Simulated throughput scales with the fleet.**  Each shard runs an
   independent simulated timeline, so the cluster-wide makespan is the
   slowest shard's horizon; with ``SHARDS``x the device capacity the
   sharded makespan must come in at least ``MIN_SIM_SPEEDUP``x shorter.
   The gate lives on the simulated clock — the same convention as
   ``bench_serve_throughput.py`` — because wall-clock process
   parallelism is a property of the host's core count (this container
   may have one core; ``host.cpus`` is recorded in the JSON), while the
   simulated timeline measures what the serving stack itself does.
2. **Zero result/timing divergence.**  Every request must report the
   identical ``(kernel_sim_us, dram_bytes, result)`` triple from both
   topologies: crossing a process boundary may not change what any
   kernel computed or how long the cost model says it ran.  (Launch
   *overhead* legitimately differs — batch composition depends on
   interleaving — so it is excluded, as in the determinism tests.)

Round-robin routing is used for the scaling number so the fleet loads
evenly; cache-affinity routing is covered by ``tests/test_shard.py``.

Run standalone with ``--smoke`` (fewer requests, 2 shards, >= 2x gate)
or under pytest-benchmark for the full 4-shard >= 3x configuration::

    PYTHONPATH=src python benchmarks/bench_shard_throughput.py \
        --out BENCH_shard.json
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.serve import ServeCluster
from repro.serve.shard import ShardedCluster

DEVICES_PER_SHARD = 2
SHARDS = 4
REQUESTS = 960
SEED = 11
MIN_SIM_SPEEDUP = 3.0

SMOKE_SHARDS = 2
SMOKE_REQUESTS = 240
SMOKE_MIN_SIM_SPEEDUP = 1.6

#: Deep router budget: this bench is capacity-bound, so the front door
#: floods the shards and lets workers form full batches.  (The default
#: shallow budget exists to keep the backlog in the priority-lane queue
#: for latency protection — the opposite trade.)
SHARD_INFLIGHT = 1024

#: (workload, params) menu; several distinct kernels so batching,
#: caching, and routing all see variety.
_MENU = [
    ("sgemm", {"m": 32, "n": 32, "k": 8}),
    ("sgemm", {"m": 32, "n": 64, "k": 8}),
    ("saxpy", {"n": 512}),
    ("saxpy", {"n": 1024}),
    ("scale", {"n": 512}),
    ("blur", {"blocks_x": 4, "blocks_y": 2}),
]


def _request_list(n, seed):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        workload, params = _MENU[int(rng.integers(len(_MENU)))]
        params = dict(params)
        params["seed"] = int(rng.integers(1 << 30))
        out.append((workload, params))
    return out


def _signature(req):
    """The divergence triple: what must not change across topologies."""
    result = req.result
    if isinstance(result, float):
        result = round(result, 4)
    return (round(req.kernel_sim_us, 6), req.dram_bytes, result)


def _run_single(work):
    t0 = time.perf_counter()
    with ServeCluster(num_devices=DEVICES_PER_SHARD, policy="round-robin",
                      queue_capacity=2048, recorder=False) as cluster:
        reqs = [cluster.submit(w, p, block=True) for w, p in work]
        assert cluster.drain(timeout=600.0), "single: drain timed out"
        report = cluster.report()
    wall = time.perf_counter() - t0
    assert report["requests"]["done"] == len(work), \
        f"single: {report['requests']} of {len(work)}"
    return {
        "wall_s": wall,
        "horizon_us": report["sim"]["horizon_us"],
        "throughput_rps": report["throughput_rps"],
        "kernel_us": report["sim"]["kernel_us"],
    }, [_signature(r) for r in reqs]


def _run_sharded(work, shards):
    t0 = time.perf_counter()
    with ShardedCluster(shards=shards, devices_per_shard=DEVICES_PER_SHARD,
                        routing="round-robin", policy="round-robin",
                        queue_capacity=2048, ship_traces=False,
                        recorder=False,
                        shard_inflight=SHARD_INFLIGHT) as cluster:
        reqs = [cluster.submit(w, p, block=True) for w, p in work]
        assert cluster.drain(timeout=600.0), "sharded: drain timed out"
        report = cluster.report(refresh_snapshots=True)
    wall = time.perf_counter() - t0
    assert report["requests"]["done"] == len(work), \
        f"sharded: {report['requests']} of {len(work)}"
    per_shard = [
        {"index": s["index"],
         "requests_done": s["requests_done"],
         "horizon_us": (s.get("inner") or {}).get("sim", {})
         .get("horizon_us", 0.0)}
        for s in report["per_shard"]
    ]
    return {
        "wall_s": wall,
        "horizon_us": report["sim"]["horizon_us"],
        "throughput_rps": report["throughput_rps"],
        "kernel_us": report["sim"]["kernel_us"],
        "per_shard": per_shard,
        "control": report["control"],
    }, [_signature(r) for r in reqs]


def _measure(shards, requests):
    work = _request_list(requests, SEED)
    single, sig_single = _run_single(work)
    sharded, sig_sharded = _run_sharded(work, shards)
    divergent = sum(1 for a, b in zip(sig_single, sig_sharded) if a != b)
    speedup = single["horizon_us"] / sharded["horizon_us"] \
        if sharded["horizon_us"] > 0 else 0.0
    return {
        "requests": requests,
        "shards": shards,
        "devices_per_shard": DEVICES_PER_SHARD,
        "seed": SEED,
        "single": single,
        "sharded": sharded,
        "sim_speedup": speedup,
        "divergent_requests": divergent,
        "host": {"cpus": os.cpu_count() or 1},
    }


def _check(results, min_speedup):
    assert results["divergent_requests"] == 0, (
        f"{results['divergent_requests']} requests diverged in "
        f"(kernel_sim_us, dram_bytes, result) between single-process "
        f"and sharded serving")
    assert results["sim_speedup"] >= min_speedup, (
        f"sharded simulated makespan speedup {results['sim_speedup']:.2f}x "
        f"below the {min_speedup}x gate at {results['shards']} shards "
        f"(single horizon {results['single']['horizon_us']:.1f} us, "
        f"sharded {results['sharded']['horizon_us']:.1f} us)")


def _render(results):
    s, sh = results["single"], results["sharded"]
    lines = [
        f"  [shard] {results['requests']} requests, "
        f"{results['shards']} shards x "
        f"{results['devices_per_shard']} devices "
        f"(host cpus={results['host']['cpus']})",
        f"  single : horizon {s['horizon_us']:10.1f} us   "
        f"wall {s['wall_s']:6.2f} s",
        f"  sharded: horizon {sh['horizon_us']:10.1f} us   "
        f"wall {sh['wall_s']:6.2f} s",
        f"  simulated makespan speedup {results['sim_speedup']:.2f}x, "
        f"divergent requests {results['divergent_requests']}",
    ]
    for p in sh["per_shard"]:
        lines.append(f"    shard{p['index']}: {p['requests_done']} done, "
                     f"horizon {p['horizon_us']:.1f} us")
    return "\n".join(lines)


def test_shard_throughput(benchmark, capsys):
    results = {}

    def once():
        results.update(_measure(SHARDS, REQUESTS))

    benchmark.pedantic(once, rounds=1, iterations=1)
    _check(results, MIN_SIM_SPEEDUP)
    benchmark.extra_info.update({
        "workload": f"{REQUESTS}-request mixed menu, "
                    f"{SHARDS}x{DEVICES_PER_SHARD} devices",
        "sim_speedup": round(results["sim_speedup"], 2),
        "divergent_requests": results["divergent_requests"],
    })
    with capsys.disabled():
        print("\n" + _render(results))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Sharded-cluster throughput scaling benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help=f"{SMOKE_SHARDS} shards / "
                             f"{SMOKE_REQUESTS} requests, "
                             f">= {SMOKE_MIN_SIM_SPEEDUP}x gate")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the results as JSON")
    args = parser.parse_args(argv)
    shards = SMOKE_SHARDS if args.smoke else SHARDS
    requests = SMOKE_REQUESTS if args.smoke else REQUESTS
    gate = SMOKE_MIN_SIM_SPEEDUP if args.smoke else MIN_SIM_SPEEDUP
    results = _measure(shards, requests)
    results["gate_min_speedup"] = gate
    print(_render(results))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"  wrote {args.out}")
    _check(results, gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
