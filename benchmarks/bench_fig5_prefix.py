"""Figure 5: prefix sum (inclusive scan).

Paper: CM 1.6x over the Blelloch-style SLM scan.
"""

import numpy as np
import pytest

from repro.workloads import prefix_sum as ps


@pytest.mark.parametrize("log2n", [14, 15, 16])
def test_prefix_sum(compare, log2n):
    v = ps.make_input(1 << log2n)
    ref = ps.reference(v)
    results = compare(
        f"prefix 2^{log2n}",
        cm_fn=lambda d: ps.run_cm(d, v),
        ocl_fn=lambda d: ps.run_ocl(d, v),
        reference=ref,
        paper="1.6",
        check=lambda out: np.array_equal(out, ref),
    )
    assert sum(r.timing.barriers for r in results["cm"].device.runs) == 0
