"""Figure 5: 256-bin histogram.

Paper: narrow gap on random input, up to 2.7x on a homogeneous-background
real-world image (atomic serialization in the SLM path).
"""

import numpy as np
import pytest

from repro.workloads import histogram as hg

N_PIXELS = 1 << 20


@pytest.mark.parametrize("maker,label,paper", [
    (hg.make_random, "random", "~1.4-1.6 (narrow)"),
    (hg.make_natural, "natural", "mid"),
    (hg.make_homogeneous, "homogeneous", "up to 2.7"),
])
def test_histogram(compare, maker, label, paper):
    px = maker(N_PIXELS)
    ref = hg.reference(px)
    compare(
        f"histogram {label}",
        cm_fn=lambda d: hg.run_cm(d, px),
        ocl_fn=lambda d: hg.run_ocl(d, px),
        reference=ref,
        paper=paper,
        check=lambda out: np.array_equal(out, ref),
    )


def test_cm_is_input_insensitive(compare):
    """The paper's point: only OpenCL degrades on contended inputs."""
    rand = hg.make_random(N_PIXELS)
    homog = hg.make_homogeneous(N_PIXELS)
    from repro.workloads.common import run_and_time

    cm_r = run_and_time("c", lambda d: hg.run_cm(d, rand))
    cm_h = run_and_time("c", lambda d: hg.run_cm(d, homog))
    assert cm_h.total_time_us == pytest.approx(cm_r.total_time_us, rel=0.02)
