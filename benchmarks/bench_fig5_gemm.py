"""Figure 5: SGEMM and DGEMM.

Paper: CM ~10% faster on SGEMM, ~8.5% on DGEMM (larger per-thread register
blocks re-read A/B tiles less often).
"""

import numpy as np
import pytest

from repro.workloads import gemm


@pytest.mark.parametrize("m,n,k", [(256, 256, 256), (512, 256, 128)])
def test_sgemm(compare, m, n, k):
    a, b, c = gemm.make_inputs(m, n, k)
    ref = gemm.reference(a, b, c)
    compare(
        f"sgemm {m}x{n}x{k}",
        cm_fn=lambda d: gemm.run_cm_sgemm(d, a, b, c),
        ocl_fn=lambda d: gemm.run_ocl_sgemm(d, a, b, c),
        reference=ref,
        paper="~1.10",
        check=lambda out: np.allclose(out, ref, rtol=1e-2, atol=1e-2),
    )


@pytest.mark.parametrize("m,n,k", [(256, 256, 128)])
def test_dgemm(compare, m, n, k):
    a, b, c = gemm.make_inputs(m, n, k, dtype=np.float64)
    ref = gemm.reference(a, b, c)
    compare(
        f"dgemm {m}x{n}x{k}",
        cm_fn=lambda d: gemm.run_cm_dgemm(d, a, b, c),
        ocl_fn=lambda d: gemm.run_ocl_dgemm(d, a, b, c),
        reference=ref,
        paper="~1.085",
        check=lambda out: np.allclose(out, ref, rtol=1e-10),
    )
