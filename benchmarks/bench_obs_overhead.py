"""Observability must be free when disabled: host-overhead benchmark.

The instrumentation layer (``repro.obs``) threads span hooks, metric
counters, and breakdown accumulation through the batch-execution engine
added in the previous PR.  Its contract is *zero-cost-when-disabled*:
with the default no-op sink, ``trace_span`` returns a shared null
context manager and no breakdowns are folded, so the PR 1 dispatch
speedup must survive.

This benchmark freezes a copy of the PR 1 ``run_compiled`` inner loop —
pooled ``TracingExecutor``, streaming ``TimingAccumulator``, no
instrumentation at all — and times it against today's instrumented
``Device.run_compiled`` with observability disabled, on the same
128-thread SGEMM grid ``bench_batch_engine`` uses.  The instrumented
path must be within ``MAX_OVERHEAD`` of the frozen baseline.
"""

import itertools
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_batch_engine import (  # noqa: E402
    _SIG, _bind, _gemm_body, BM, BN, K, M, N,
)

from repro.sim import Device  # noqa: E402
from repro.sim.batch import TracingExecutor  # noqa: E402
from repro.sim.machine import GEN11_ICL  # noqa: E402
from repro.sim.timing import TimingAccumulator  # noqa: E402
from repro.sim.trace import ThreadTrace  # noqa: E402
from repro.workloads import gemm  # noqa: E402

#: Instrumented dispatch may cost at most this fraction over the frozen
#: PR 1 loop (the acceptance criterion is < 10%).
MAX_OVERHEAD = 0.10
LAUNCHES = 3
TRIALS = 3


def _grid_ids(grid):
    dims = [range(g) for g in grid]
    for tid in itertools.product(*reversed(dims)):
        yield tuple(reversed(tid))


def _frozen_pr1_dispatch(kern, grid, surfaces, scalars, machine,
                         chunk_threads=64):
    """The PR 1 ``run_compiled`` hot loop, before instrumentation landed.

    Identical executor pooling, scalar pre-resolution, line-tracking
    reset, and chunked retire — but no spans, no profile counters, no
    breakdowns.
    """
    for surf in surfaces:
        surf.reset_line_tracking()
    table = {i: s for i, s in enumerate(surfaces)}
    scalar_bases = []
    for pname, vreg in kern.visa.params.items():
        base = kern.allocation.grf_offset.get(vreg.id)
        if base is not None:
            scalar_bases.append((pname, base))
    ex = TracingExecutor(table)
    acc = TimingAccumulator(machine)
    live = []
    for thread_id in _grid_ids(grid):
        ex.reset()
        trace = ThreadTrace(machine)
        ex.begin_thread(trace)
        values = scalars(thread_id)
        for pname, base in scalar_bases:
            value = values.get(pname)
            if value is not None:
                ex.grf.write_bytes(base, np.asarray([value], dtype=np.int32))
        ex.run(kern.program)
        trace.note_grf(kern.allocation.max_grf_bytes)
        live.append(trace)
        if len(live) >= chunk_threads:
            acc.extend(live)
            live.clear()
    if live:
        acc.extend(live)
        live.clear()
    return acc.finalize()


def _measure():
    a, b, c = gemm.make_inputs(M, N, K, seed=3)
    grid = (N // BN, M // BM)
    scalars = lambda tid: {"tx": tid[0], "ty": tid[1]}  # noqa: E731

    dev = Device()
    kern = dev.compile(_gemm_body, "gemm_batch", _SIG, ["tx", "ty"])
    assert not dev.obs.enabled, "benchmark requires disabled observability"

    def run_base():
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            timing = _frozen_pr1_dispatch(
                kern, grid, [abuf, bbuf, cbuf], scalars, GEN11_ICL)
        return time.perf_counter() - t0, timing

    def run_inst():
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            run = dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                                   scalars=scalars)
        return time.perf_counter() - t0, run.timing

    # One untimed warm-up of each path, then best-of-TRIALS with the
    # measurement order alternated per trial — host turbo/allocator
    # drift would otherwise bias whichever path always ran first.
    run_base()
    run_inst()
    base_t = inst_t = float("inf")
    base_time = inst_time = None
    for trial in range(TRIALS):
        order = (run_base, run_inst) if trial % 2 == 0 else \
            (run_inst, run_base)
        for fn in order:
            t, timing = fn()
            if fn is run_base:
                base_t, base_time = min(base_t, t), timing
            else:
                inst_t, inst_time = min(inst_t, t), timing

    # Both paths must model the identical kernel time.
    assert abs(base_time.time_us - inst_time.time_us) < 1e-9
    return base_t, inst_t


def test_disabled_observability_overhead(benchmark, capsys):
    results = {}

    def once():
        results["base"], results["inst"] = _measure()

    benchmark.pedantic(once, rounds=1, iterations=1)
    base_t, inst_t = results["base"], results["inst"]
    overhead = inst_t / base_t - 1.0
    benchmark.extra_info.update({
        "workload": f"sgemm {M}x{N}x{K} grid, {LAUNCHES} launches",
        "frozen_pr1_ms": round(base_t * 1e3, 1),
        "instrumented_ms": round(inst_t * 1e3, 1),
        "overhead_pct": round(overhead * 100, 1),
    })
    with capsys.disabled():
        print(f"\n  [obs overhead] frozen={base_t * 1e3:7.1f}ms "
              f"instrumented={inst_t * 1e3:7.1f}ms "
              f"overhead={overhead * 100:+5.1f}%")
    assert overhead < MAX_OVERHEAD, (
        f"disabled observability costs {overhead:.1%} over the frozen "
        f"PR 1 dispatch loop (allowed {MAX_OVERHEAD:.0%})")


if __name__ == "__main__":
    base_t, inst_t = _measure()
    print(f"frozen PR1:    {base_t * 1e3:8.1f} ms")
    print(f"instrumented:  {inst_t * 1e3:8.1f} ms")
    print(f"overhead:      {(inst_t / base_t - 1) * 100:+.1f}%")
