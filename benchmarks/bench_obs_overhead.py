"""Observability must be free when disabled: host-overhead benchmark.

The instrumentation layer (``repro.obs``) threads span hooks, metric
counters, and breakdown accumulation through the batch-execution engine
added in the previous PR.  Its contract is *zero-cost-when-disabled*:
with the default no-op sink, ``trace_span`` returns a shared null
context manager and no breakdowns are folded, so the PR 1 dispatch
speedup must survive.

This benchmark freezes a copy of the PR 1 ``run_compiled`` inner loop —
pooled ``TracingExecutor``, streaming ``TimingAccumulator``, no
instrumentation at all — and times it against today's instrumented
``Device.run_compiled`` with observability disabled, on the same
128-thread SGEMM grid ``bench_batch_engine`` uses.  The instrumented
path must be within ``MAX_OVERHEAD`` of the frozen baseline.
"""

import itertools
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_batch_engine import (  # noqa: E402
    _SIG, _bind, _gemm_body, BM, BN, K, M, N,
)

from repro.sim import Device  # noqa: E402
from repro.sim.batch import TracingExecutor  # noqa: E402
from repro.sim.machine import GEN11_ICL  # noqa: E402
from repro.sim.timing import TimingAccumulator  # noqa: E402
from repro.sim.trace import ThreadTrace  # noqa: E402
from repro.workloads import gemm  # noqa: E402

#: Instrumented dispatch may cost at most this fraction over the frozen
#: PR 1 loop (the acceptance criterion is < 10%).
MAX_OVERHEAD = 0.10
LAUNCHES = 3
TRIALS = 3

#: The always-on request tracing + flight recorder may cost at most
#: this fraction over the identical serve path with the recorder off
#: (the acceptance criterion is < 5%).
MAX_SERVE_OVERHEAD = 0.05
SERVE_PAIRS = 13
SERVE_BATCH = 8
#: A representative compiled request (~ms of serve work); the recorder
#: cost is a per-request constant, so the toy kernels would overstate
#: the fraction a real serving mix pays.
SERVE_WORKLOAD = ("sgemm", {"m": 32, "n": 16, "k": 8, "seed": 7})


def _grid_ids(grid):
    dims = [range(g) for g in grid]
    for tid in itertools.product(*reversed(dims)):
        yield tuple(reversed(tid))


def _frozen_pr1_dispatch(kern, grid, surfaces, scalars, machine,
                         chunk_threads=64):
    """The PR 1 ``run_compiled`` hot loop, before instrumentation landed.

    Identical executor pooling, scalar pre-resolution, line-tracking
    reset, and chunked retire — but no spans, no profile counters, no
    breakdowns.
    """
    for surf in surfaces:
        surf.reset_line_tracking()
    table = {i: s for i, s in enumerate(surfaces)}
    scalar_bases = []
    for pname, vreg in kern.visa.params.items():
        base = kern.allocation.grf_offset.get(vreg.id)
        if base is not None:
            scalar_bases.append((pname, base))
    ex = TracingExecutor(table)
    acc = TimingAccumulator(machine)
    live = []
    for thread_id in _grid_ids(grid):
        ex.reset()
        trace = ThreadTrace(machine)
        ex.begin_thread(trace)
        values = scalars(thread_id)
        for pname, base in scalar_bases:
            value = values.get(pname)
            if value is not None:
                ex.grf.write_bytes(base, np.asarray([value], dtype=np.int32))
        ex.run(kern.program)
        trace.note_grf(kern.allocation.max_grf_bytes)
        live.append(trace)
        if len(live) >= chunk_threads:
            acc.extend(live)
            live.clear()
    if live:
        acc.extend(live)
        live.clear()
    return acc.finalize()


def _measure():
    a, b, c = gemm.make_inputs(M, N, K, seed=3)
    grid = (N // BN, M // BM)
    scalars = lambda tid: {"tx": tid[0], "ty": tid[1]}  # noqa: E731

    dev = Device()
    kern = dev.compile(_gemm_body, "gemm_batch", _SIG, ["tx", "ty"])
    assert not dev.obs.enabled, "benchmark requires disabled observability"

    def run_base():
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            timing = _frozen_pr1_dispatch(
                kern, grid, [abuf, bbuf, cbuf], scalars, GEN11_ICL)
        return time.perf_counter() - t0, timing

    def run_inst():
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            run = dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                                   scalars=scalars)
        return time.perf_counter() - t0, run.timing

    # One untimed warm-up of each path, then best-of-TRIALS with the
    # measurement order alternated per trial — host turbo/allocator
    # drift would otherwise bias whichever path always ran first.
    run_base()
    run_inst()
    base_t = inst_t = float("inf")
    base_time = inst_time = None
    for trial in range(TRIALS):
        order = (run_base, run_inst) if trial % 2 == 0 else \
            (run_inst, run_base)
        for fn in order:
            t, timing = fn()
            if fn is run_base:
                base_t, base_time = min(base_t, t), timing
            else:
                inst_t, inst_time = min(inst_t, t), timing

    # Both paths must model the identical kernel time.
    assert abs(base_time.time_us - inst_time.time_us) < 1e-9
    return base_t, inst_t


def _serve_round(cluster, worker, tracer):
    """One dispatcher round driven inline: mint, resolve, batch, run.

    Mirrors what submit + the dispatcher thread do per request (trace
    minting, queue stamps, stage spans) without thread-scheduling noise.
    """
    from repro.serve.request import Request, RequestStatus

    workload, params = SERVE_WORKLOAD
    reqs = []
    for _ in range(SERVE_BATCH):
        req = Request(workload=workload, params=dict(params))
        cluster._mint_trace(req)
        req.status = RequestStatus.QUEUED
        req.t_submit_wall = time.perf_counter()
        reqs.append(req)
    t_take = tracer.now_us()
    for req in reqs:
        if req.trace is not None:
            req.trace.record("queue_wait", tracer.to_us(req.t_submit_wall),
                             t_take, depth=0)
    work = [w for w in (cluster._resolve(r) for r in reqs)
            if w is not None]
    for batch in cluster.batcher.form(work):
        t_sched = tracer.now_us()
        for pos, it in enumerate(batch.items):
            if it.request.trace is not None:
                it.request.trace.record("schedule", t_take, t_sched,
                                        policy="bench", device=0)
        worker._execute(batch)


def _measure_recorder():
    """Best observed round CPU time with the recorder off vs on.

    The serve round is single-threaded CPU-bound work, so it is timed
    with ``time.process_time`` — wall clock on a shared host books
    scheduler preemption against whichever configuration was unlucky.
    Rounds alternate off/on back-to-back (host-speed drift hits both
    equally) and the order *within* each pair alternates too — the
    second round of a pair consistently runs a bit slower (allocator /
    cache state left by the first), which a fixed order would book
    entirely against one configuration.  The minimum over all pairs is
    the floor estimator: both configurations get equal chances at a
    clean scheduling window, and the true per-request tracing cost is a
    constant that no lucky window can hide.
    """
    from repro.obs.tracing import get_tracer
    import repro.serve.workloads  # noqa: F401 - registers builtins
    from repro.serve.cluster import ServeCluster

    tracer = get_tracer()
    setups = {}
    for rec in (False, True):
        cluster = ServeCluster(num_devices=1, batching=True,
                               max_batch=SERVE_BATCH, recorder=rec,
                               slo={"*": 1e9} if rec else None)
        worker = cluster.workers[0]
        _serve_round(cluster, worker, tracer)  # warm cache + JIT + gate
        setups[rec] = (cluster, worker)
    samples = {False: [], True: []}
    for pair in range(SERVE_PAIRS):
        order = (False, True) if pair % 2 == 0 else (True, False)
        for rec in order:
            cluster, worker = setups[rec]
            t0 = time.process_time()
            _serve_round(cluster, worker, tracer)
            samples[rec].append(time.process_time() - t0)
    return min(samples[False]), min(samples[True])


def test_disabled_observability_overhead(benchmark, capsys):
    results = {}

    def once():
        results["base"], results["inst"] = _measure()

    benchmark.pedantic(once, rounds=1, iterations=1)
    base_t, inst_t = results["base"], results["inst"]
    overhead = inst_t / base_t - 1.0
    benchmark.extra_info.update({
        "workload": f"sgemm {M}x{N}x{K} grid, {LAUNCHES} launches",
        "frozen_pr1_ms": round(base_t * 1e3, 1),
        "instrumented_ms": round(inst_t * 1e3, 1),
        "overhead_pct": round(overhead * 100, 1),
    })
    with capsys.disabled():
        print(f"\n  [obs overhead] frozen={base_t * 1e3:7.1f}ms "
              f"instrumented={inst_t * 1e3:7.1f}ms "
              f"overhead={overhead * 100:+5.1f}%")
    assert overhead < MAX_OVERHEAD, (
        f"disabled observability costs {overhead:.1%} over the frozen "
        f"PR 1 dispatch loop (allowed {MAX_OVERHEAD:.0%})")


def test_flight_recorder_serve_overhead(benchmark, capsys):
    """Always-on request tracing + ring recording stays under 5%.

    A shared CI host cannot *disprove* the budget in one try — one noisy
    window inflates a 13-pair floor past any threshold — so the gate
    takes the best of up to three measurement attempts: a real
    regression fails all three, noise does not.
    """
    results = {}

    def once():
        best = (float("inf"), float("inf"), float("inf"))
        for _attempt in range(3):
            base, inst = _measure_recorder()
            if inst / base - 1.0 < best[0]:
                best = (inst / base - 1.0, base, inst)
            if best[0] < MAX_SERVE_OVERHEAD:
                break
        results["base"], results["inst"] = best[1], best[2]

    benchmark.pedantic(once, rounds=1, iterations=1)
    base_t, inst_t = results["base"], results["inst"]
    overhead = inst_t / base_t - 1.0
    benchmark.extra_info.update({
        "workload": f"{SERVE_WORKLOAD[0]} serve batches of "
                    f"{SERVE_BATCH}, {SERVE_PAIRS} interleaved pairs",
        "recorder_off_ms": round(base_t * 1e3, 1),
        "recorder_on_ms": round(inst_t * 1e3, 1),
        "overhead_pct": round(overhead * 100, 1),
    })
    with capsys.disabled():
        print(f"\n  [recorder overhead] off={base_t * 1e3:7.1f}ms "
              f"on={inst_t * 1e3:7.1f}ms "
              f"overhead={overhead * 100:+5.1f}%")
    assert overhead < MAX_SERVE_OVERHEAD, (
        f"always-on request tracing + flight recorder costs "
        f"{overhead:.1%} over the recorder-off serve path "
        f"(allowed {MAX_SERVE_OVERHEAD:.0%})")


if __name__ == "__main__":
    base_t, inst_t = _measure()
    print(f"frozen PR1:    {base_t * 1e3:8.1f} ms")
    print(f"instrumented:  {inst_t * 1e3:8.1f} ms")
    print(f"overhead:      {(inst_t / base_t - 1) * 100:+.1f}%")
    base_t, inst_t = _measure_recorder()
    print(f"recorder off:  {base_t * 1e3:8.1f} ms")
    print(f"recorder on:   {inst_t * 1e3:8.1f} ms")
    print(f"overhead:      {(inst_t / base_t - 1) * 100:+.1f}%")
