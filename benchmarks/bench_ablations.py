"""Ablations of the design choices DESIGN.md calls out.

Each ablation removes one CM advantage and shows the speedup collapse,
confirming the mechanism the paper credits.
"""

import numpy as np

from repro.workloads import gemm, histogram as hg, prefix_sum as ps, spmv
from repro.workloads.common import run_and_time


def test_spmv_dynamic_simd_width(benchmark, capsys):
    """Webbase: force SIMD16 (the SIMT width) vs dynamic 4/8/16."""
    m = spmv.make_webbase()
    x = np.random.default_rng(1).standard_normal(m.ncols).astype(np.float32)
    ref = spmv.reference(m, x)
    out = {}

    def once():
        out["dyn"] = run_and_time("dyn", lambda d: spmv.run_cm(d, m, x))
        out["fixed"] = run_and_time(
            "fixed", lambda d: spmv.run_cm(d, m, x, force_width=16))

    benchmark.pedantic(once, rounds=1, iterations=1)
    assert np.allclose(out["dyn"].output, ref, rtol=1e-3, atol=1e-3)
    assert np.allclose(out["fixed"].output, ref, rtol=1e-3, atol=1e-3)
    gain = out["fixed"].total_time_us / out["dyn"].total_time_us
    benchmark.extra_info["fixed_over_dynamic"] = round(gain, 2)
    with capsys.disabled():
        print(f"\n  [ablation spmv] fixed-SIMD16 / dynamic-width = "
              f"{gain:.2f}x (dynamic width wins)")
    assert gain >= 1.0


def test_histogram_register_blocking(benchmark, capsys):
    """Pixels per CM thread: more register-resident work per dispatch."""
    px = hg.make_random(1 << 19)
    ref = hg.reference(px)
    rows = {}

    def once():
        for ppt in (512, 2048, 8192):
            rows[ppt] = run_and_time(
                f"ppt{ppt}", lambda d, p=ppt: hg.run_cm(d, px, p))

    benchmark.pedantic(once, rounds=1, iterations=1)
    for ppt, r in rows.items():
        assert np.array_equal(r.output, ref)
        benchmark.extra_info[f"ppt_{ppt}_us"] = round(r.total_time_us, 1)
    with capsys.disabled():
        times = {k: round(v.total_time_us, 1) for k, v in rows.items()}
        print(f"\n  [ablation histogram] pixels/thread -> us: {times}")


def test_gemm_block_size(benchmark, capsys):
    """CM register-block depth: 16 rows (the SIMT block) vs 32 rows."""
    import repro.cm as cm
    a, b, c = gemm.make_inputs(256, 256, 256)
    ref = gemm.reference(a, b, c)
    out = {}

    def once():
        out[32] = run_and_time("bm32", lambda d: gemm._run_cm_typed(
            d, a, b, c, 1.0, 0.0, cm.float32, 32, 16, "cm_bm32"))
        out[16] = run_and_time("bm16", lambda d: gemm._run_cm_typed(
            d, a, b, c, 1.0, 0.0, cm.float32, 16, 16, "cm_bm16"))

    benchmark.pedantic(once, rounds=1, iterations=1)
    for r in out.values():
        assert np.allclose(r.output, ref, rtol=1e-2, atol=1e-2)
    ratio = out[16].total_time_us / out[32].total_time_us
    benchmark.extra_info["bm16_over_bm32"] = round(ratio, 3)
    with capsys.disabled():
        print(f"\n  [ablation gemm] 16-row block / 32-row block = "
              f"{ratio:.3f}x (bigger block wins)")
    assert ratio >= 1.0


def test_prefix_span(benchmark, capsys):
    """Elements scanned per CM thread in registers."""
    v = ps.make_input(1 << 15)
    ref = ps.reference(v)
    rows = {}

    def once():
        for span in (128, 256):
            rows[span] = run_and_time(
                f"span{span}", lambda d, s=span: ps.run_cm(d, v, span=s))

    benchmark.pedantic(once, rounds=1, iterations=1)
    for span, r in rows.items():
        assert np.array_equal(r.output, ref)
        benchmark.extra_info[f"span_{span}_us"] = round(r.total_time_us, 1)
    with capsys.disabled():
        times = {k: round(v2.total_time_us, 1) for k, v2 in rows.items()}
        print(f"\n  [ablation prefix] span -> us: {times}")
