"""Figure 5 / Section III: 3x3 linear (box) filter.

Paper: the tuned media-block OpenCL version reaches "less than 50% of
CM's performance" (speedup >= 2); the naive SIMT version is worse.
"""

import numpy as np
import pytest

from repro.workloads import linear_filter as lf


@pytest.mark.parametrize("width,height", [(256, 192), (512, 384)])
def test_linear_filter(compare, width, height):
    img = lf.make_image(width, height)
    ref = lf.reference(img)
    results = compare(
        f"linear {width}x{height}",
        cm_fn=lambda d: lf.run_cm(d, img),
        ocl_fn=lambda d: lf.run_ocl_optimized(d, img),
        reference=ref,
        paper=">2.0 (tuned OpenCL below 50% of CM)",
        check=lambda out: np.array_equal(out, ref),
        extra_runs=[("ocl_naive", lambda d: lf.run_ocl(d, img))],
    )
    assert results["ocl"].total_time_us > results["cm"].total_time_us
