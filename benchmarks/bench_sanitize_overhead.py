"""Sanitizers must be (nearly) free when disabled: host-overhead bench.

The sanitizer subsystem (``repro.sanitize``) threads per-instruction
hooks through the functional executor and a gating check through
``Device.run_compiled``.  Its contract mirrors the observability
layer's: with ``validate="off"`` the executor's ``san`` slot stays
``None``, every hook collapses to a single attribute test, and the
dispatch gate is one dict probe — so the sequential dispatch loop must
stay within ``MAX_OVERHEAD`` of the frozen pre-instrumentation loop
from ``bench_obs_overhead``.

For context the benchmark also reports the cost of a fully sanitized
launch (``validate="always"``: race shadow sets + uninit bitmap +
OOB accounting); that price is informational, not asserted — it is
paid once per kernel under the default ``validate="first"`` policy.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_batch_engine import (  # noqa: E402
    _SIG, _bind, _gemm_body, BM, BN, K, M, N,
)
from bench_obs_overhead import _frozen_pr1_dispatch  # noqa: E402

from repro.sim import Device  # noqa: E402
from repro.sim.machine import GEN11_ICL  # noqa: E402
from repro.workloads import gemm  # noqa: E402

#: Disabled sanitizers may cost at most this fraction over the frozen
#: pre-sanitizer dispatch loop (the acceptance criterion is < 15%).
MAX_OVERHEAD = 0.15
LAUNCHES = 3
TRIALS = 3


def _measure():
    a, b, c = gemm.make_inputs(M, N, K, seed=3)
    grid = (N // BN, M // BM)
    scalars = lambda tid: {"tx": tid[0], "ty": tid[1]}  # noqa: E731

    dev = Device()
    kern = dev.compile(_gemm_body, "gemm_batch", _SIG, ["tx", "ty"])
    assert not dev.obs.enabled, "benchmark requires disabled observability"

    def run_frozen():
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            timing = _frozen_pr1_dispatch(
                kern, grid, [abuf, bbuf, cbuf], scalars, GEN11_ICL)
        return time.perf_counter() - t0, timing

    def _run_validated(mode):
        abuf, bbuf, cbuf = _bind(dev, a, b, c)
        t0 = time.perf_counter()
        for _ in range(LAUNCHES):
            run = dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                                   scalars=scalars, wide=False,
                                   validate=mode)
        return time.perf_counter() - t0, run.timing

    def run_off():
        return _run_validated("off")

    def run_always():
        return _run_validated("always")

    # One untimed warm-up of each path, then best-of-TRIALS with the
    # measurement order alternated per trial — host turbo/allocator
    # drift would otherwise bias whichever path always ran first.
    run_frozen()
    run_off()
    run_always()
    best = {run_frozen: float("inf"), run_off: float("inf"),
            run_always: float("inf")}
    timings = {}
    for trial in range(TRIALS):
        order = (run_frozen, run_off, run_always) if trial % 2 == 0 else \
            (run_always, run_off, run_frozen)
        for fn in order:
            t, timing = fn()
            best[fn] = min(best[fn], t)
            timings[fn] = timing

    # All three paths must model the identical kernel time: sanitizing
    # changes what the host checks, never what the device simulates.
    assert abs(timings[run_frozen].time_us
               - timings[run_off].time_us) < 1e-9
    assert abs(timings[run_frozen].time_us
               - timings[run_always].time_us) < 1e-9
    return best[run_frozen], best[run_off], best[run_always]


def test_disabled_sanitizer_overhead(benchmark, capsys):
    results = {}

    def once():
        results["t"] = _measure()

    benchmark.pedantic(once, rounds=1, iterations=1)
    frozen_t, off_t, always_t = results["t"]
    overhead = off_t / frozen_t - 1.0
    sanitized_x = always_t / frozen_t
    benchmark.extra_info.update({
        "workload": f"sgemm {M}x{N}x{K} grid, {LAUNCHES} launches",
        "frozen_ms": round(frozen_t * 1e3, 1),
        "validate_off_ms": round(off_t * 1e3, 1),
        "validate_always_ms": round(always_t * 1e3, 1),
        "disabled_overhead_pct": round(overhead * 100, 1),
        "sanitized_slowdown_x": round(sanitized_x, 2),
    })
    with capsys.disabled():
        print(f"\n  [sanitize overhead] frozen={frozen_t * 1e3:7.1f}ms "
              f"off={off_t * 1e3:7.1f}ms ({overhead * 100:+5.1f}%) "
              f"always={always_t * 1e3:7.1f}ms ({sanitized_x:4.2f}x)")
    assert overhead < MAX_OVERHEAD, (
        f"disabled sanitizers cost {overhead:.1%} over the frozen "
        f"pre-sanitizer dispatch loop (allowed {MAX_OVERHEAD:.0%})")


if __name__ == "__main__":
    frozen_t, off_t, always_t = _measure()
    print(f"frozen loop:       {frozen_t * 1e3:8.1f} ms")
    print(f"validate='off':    {off_t * 1e3:8.1f} ms "
          f"({(off_t / frozen_t - 1) * 100:+.1f}%)")
    print(f"validate='always': {always_t * 1e3:8.1f} ms "
          f"({always_t / frozen_t:.2f}x)")
