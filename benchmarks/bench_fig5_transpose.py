"""Figure 5: out-of-place matrix transpose.

Paper: register-shuffle CM beats the SLM-tiled SIMT version by up to 2.2x.
"""

import numpy as np
import pytest

from repro.workloads import transpose as tp


@pytest.mark.parametrize("n", [256, 512, 1024])
def test_transpose(compare, n):
    a = tp.make_matrix(n)
    ref = tp.reference(a)
    results = compare(
        f"transpose {n}x{n}",
        cm_fn=lambda d: tp.run_cm(d, a),
        ocl_fn=lambda d: tp.run_ocl(d, a),
        reference=ref,
        paper="up to 2.2",
        check=lambda out: np.array_equal(out, ref),
    )
    # CM uses neither SLM nor barriers; the SIMT version needs both.
    assert all(r.timing.slm_bytes == 0 for r in results["cm"].device.runs)
    assert any(r.timing.barriers > 0 for r in results["ocl"].device.runs)
