"""Figure 5: bitonic sort.

Paper: CM outperforms OpenCL by 1.6x-2.3x, growing with input size (their
inputs are larger than simulation permits here; at our sizes the launch
count ratio dominates and the measured factor sits above the paper band,
converging toward it as n grows — see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.workloads import bitonic


@pytest.mark.parametrize("log2n", [13, 14, 15])
def test_bitonic(compare, log2n):
    keys = bitonic.make_input(log2n)
    ref = np.sort(keys)
    results = compare(
        f"bitonic 2^{log2n}",
        cm_fn=lambda d: bitonic.run_cm(d, keys),
        ocl_fn=lambda d: bitonic.run_ocl(d, keys),
        reference=ref,
        paper="1.6-2.3 (larger inputs)",
        check=lambda out: np.array_equal(out, ref),
    )
    assert results["cm"].launches < results["ocl"].launches
