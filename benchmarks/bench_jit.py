"""Kernel JIT megakernels: wall-clock speedup over the wide interpreter.

Like bench_wide_dispatch.py this measures *host* wall time — the cost of
the simulator itself — not simulated microseconds.  Two Figure-5-class
compiled workloads (the JIT SGEMM and the media-block linear filter /
blur kernel) run the same launch through the top two dispatch tiers of
``Device.run_compiled``:

- **wide**: the grid-vectorized interpreter (``wide=True, jit=False``)
  — one interpreter round trip per instruction for the whole grid.
- **jit**: the megakernel tier (``jit=True``) — the program is compiled
  once to a generated Python function (:mod:`repro.isa.jit`) with all
  region plans, dtypes, and predication baked in, and each chunk
  executes with zero per-instruction dispatch.

The sequential scalar path is also timed for reference.  Outputs must
be byte-identical across all three tiers and every simulated-timing
field of the resulting ``KernelTiming`` must match exactly: the JIT is
a pure wall-clock optimization, never a model change.  A saxpy scaling
sweep records how the speedup grows with grid size.  Results land in
``BENCH_jit.json``.

Run directly (``python benchmarks/bench_jit.py [--smoke]``) or via
pytest (smoke sizes).
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.sim.device import Device
from repro.workloads import gemm

SMOKE_MIN_SPEEDUP = 2.0   # jit vs wide, small grids (CI gate)
FULL_MIN_SPEEDUP = 3.0    # jit vs wide, Figure-5 grid sizes
TRIALS = 3

_VEC = 16
_BLUR_W, _BLUR_H = 32, 4

#: run_compiled kwargs per dispatch tier.
_MODES = {
    "jit": dict(jit=True),
    "wide": dict(wide=True, jit=False),
    "scalar": dict(wide=False, jit=False),
}


def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


def _blur_body(cmx, img, tx, ty):
    x0 = tx * _BLUR_W
    y0 = ty * _BLUR_H
    m = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    cmx.read(img, x0, y0, m)
    f = cmx.matrix(np.float32, _BLUR_H, _BLUR_W)
    f.assign(m)
    out = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    out.assign(f * np.float32(0.5))
    cmx.write(img, x0, y0, out)


def _sgemm_case(mn, k):
    """One device + compiled kernel; fresh surfaces per launch."""
    rng = np.random.default_rng(0)
    a = (rng.random((mn, k), dtype=np.float32) - 0.5).astype(np.float32)
    b = (rng.random((k, mn), dtype=np.float32) - 0.5).astype(np.float32)
    dev = Device()
    kern = dev.compile(gemm._jit_gemm_body(k), "cm_sgemm_jit",
                       gemm._JIT_SIG, ["tx", "ty"])
    grid = (mn // gemm.JIT_BN, mn // gemm.JIT_BM)

    def run(mode):
        abuf = dev.image2d(a.copy(), bytes_per_pixel=4)
        bbuf = dev.image2d(b.copy(), bytes_per_pixel=4)
        cbuf = dev.image2d(np.zeros((mn, mn), np.float32),
                           bytes_per_pixel=4)
        t0 = time.perf_counter()
        r = dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                             scalars=lambda t: {"tx": t[0], "ty": t[1]},
                             name="cm_sgemm_jit", validate="off",
                             **_MODES[mode])
        dt = time.perf_counter() - t0
        return dt, cbuf.to_numpy().copy(), r.timing

    return run, grid[0] * grid[1]


def _blur_case(bx, by):
    rng = np.random.default_rng(1)
    img = rng.integers(0, 200, size=(by * _BLUR_H, bx * _BLUR_W),
                       dtype=np.uint8)
    dev = Device()
    kern = dev.compile(_blur_body, "jit_blur", [("img", True)],
                       ["tx", "ty"])

    def run(mode):
        buf = dev.image2d(img.copy(), bytes_per_pixel=1)
        t0 = time.perf_counter()
        r = dev.run_compiled(kern, (bx, by), [buf],
                             scalars=lambda t: {"tx": t[0], "ty": t[1]},
                             name="jit_blur", validate="off",
                             **_MODES[mode])
        dt = time.perf_counter() - t0
        return dt, buf.to_numpy().copy(), r.timing

    return run, bx * by


def _saxpy_case(n_threads):
    rng = np.random.default_rng(2)
    x = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    y = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    dev = Device()
    kern = dev.compile(_saxpy_body, "jit_saxpy",
                       [("xbuf", False), ("ybuf", False)], ["tid"])

    def run(mode):
        xbuf, ybuf = dev.buffer(x.copy()), dev.buffer(y.copy())
        t0 = time.perf_counter()
        r = dev.run_compiled(kern, (n_threads,), [xbuf, ybuf],
                             scalars=lambda t: {"tid": t[0]},
                             name="jit_saxpy", validate="off",
                             **_MODES[mode])
        dt = time.perf_counter() - t0
        return dt, ybuf.to_numpy().copy(), r.timing

    return run, n_threads


def _compare(case, *args, modes=("jit", "wide", "scalar")):
    """Best-of-TRIALS wall clock per tier + identity checks.

    The first (untimed) warmup launch per tier pays one-time costs —
    megakernel compilation, plan-table construction — so the timed
    trials measure the steady state a serving process sees.
    """
    run, threads = case(*args)
    best = {}
    outs = {}
    tms = {}
    for mode in modes:
        run(mode)  # warmup: compile megakernel / build plans
        t = float("inf")
        for _ in range(TRIALS):
            dt, out, tm = run(mode)
            t = min(t, dt)
        best[mode], outs[mode], tms[mode] = t, out, tm
    ref = modes[-1]
    for mode in modes[:-1]:
        assert np.array_equal(outs[mode], outs[ref]), \
            f"outputs diverged: {mode} vs {ref}"
        for f in dataclasses.fields(tms[ref]):
            a, b = getattr(tms[mode], f.name), getattr(tms[ref], f.name)
            assert a == b, \
                f"simulated timing field {f.name} ({mode}): {a} != {b}"
    return {
        "grid_threads": threads,
        "jit_ms": round(best["jit"] * 1e3, 2),
        "wide_ms": round(best["wide"] * 1e3, 2),
        "scalar_ms": round(best["scalar"] * 1e3, 2),
        "speedup_vs_wide": round(best["wide"] / best["jit"], 2),
        "speedup_vs_scalar": round(best["scalar"] / best["jit"], 2),
        "sim_time_us": round(tms["scalar"].time_us, 3),
        "timing_identical": True,
    }


def run_benchmark(smoke=False, out_path="BENCH_jit.json"):
    if smoke:
        workloads = [("sgemm", _sgemm_case, (64, 16)),
                     ("linear_blur", _blur_case, (8, 8))]
        sweep_sizes = [64, 256]
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        workloads = [("sgemm", _sgemm_case, (256, 16)),
                     ("linear_blur", _blur_case, (32, 16))]
        sweep_sizes = [64, 256, 1024, 4096]
        min_speedup = FULL_MIN_SPEEDUP

    results = []
    for name, case, args in workloads:
        r = _compare(case, *args)
        r["workload"] = name
        results.append(r)
        print(f"  [{name:12s}] threads={r['grid_threads']:5d} "
              f"jit={r['jit_ms']:7.1f}ms wide={r['wide_ms']:7.1f}ms "
              f"scalar={r['scalar_ms']:8.1f}ms "
              f"vs_wide={r['speedup_vs_wide']:5.1f}x "
              f"vs_scalar={r['speedup_vs_scalar']:6.1f}x")

    scaling = []
    for n in sweep_sizes:
        r = _compare(_saxpy_case, n)
        scaling.append({"threads": n, "jit_ms": r["jit_ms"],
                        "wide_ms": r["wide_ms"],
                        "scalar_ms": r["scalar_ms"],
                        "speedup_vs_wide": r["speedup_vs_wide"]})
        print(f"  [saxpy sweep ] threads={n:5d} "
              f"jit={r['jit_ms']:7.1f}ms wide={r['wide_ms']:7.1f}ms "
              f"vs_wide={r['speedup_vs_wide']:5.1f}x")

    doc = {
        "benchmark": "jit_megakernel",
        "mode": "smoke" if smoke else "full",
        "min_speedup_vs_wide": min_speedup,
        "workloads": results,
        "scaling": scaling,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    worst = min(r["speedup_vs_wide"] for r in results)
    if worst < min_speedup:
        raise SystemExit(
            f"JIT only {worst:.2f}x faster than the wide interpreter "
            f"(required {min_speedup}x)")
    return doc


def test_jit_speedup(tmp_path, capsys):
    with capsys.disabled():
        print()
        doc = run_benchmark(smoke=True,
                            out_path=str(tmp_path / "BENCH_jit.json"))
    assert all(r["timing_identical"] for r in doc["workloads"])
    assert min(r["speedup_vs_wide"] for r in doc["workloads"]) \
        >= SMOKE_MIN_SPEEDUP


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small grids + 2x threshold (CI)")
    ap.add_argument("--out", default="BENCH_jit.json",
                    help="trajectory JSON path")
    ns = ap.parse_args()
    sys.path.insert(0, "src")
    run_benchmark(smoke=ns.smoke, out_path=ns.out)
