"""Divergent control flow: simulated-makespan speedup over eager dispatch.

Unlike bench_wide_dispatch.py (host wall clock), this gates *simulated*
time: the makespan (kernel time + launch-overhead model) of two
divergent workloads — the compiled bitonic sort and the compiled k-means
assignment loop — against the eager per-thread path for the same
algorithms.

- **eager**: the per-thread interpreter has no masked-CF ISA, so the 16
  work-items the compiled path packs into SIMD lanes execute one at a
  time — scalar loads, a scalar compare-and-branch per work-item, scalar
  stores (``run_cm_bitonic_eager`` / ``run_cm_kmeans_eager_divergent``).
- **compiled**: masked SIMD control flow (``simd_if`` / ``simd_while``
  lowered to the structured-CF opcodes), 16 lanes per instruction,
  dispatched on the wide tier.

Two gates:

1. the compiled makespan must beat the eager one by ``MIN_SPEEDUP``
   (4x full, 2x smoke), and
2. the compiled wide path must be *bit-identical* to sequential compiled
   dispatch — same output bytes, every simulated-timing field of every
   launch equal.  Divergence support on the wide tier is a wall-clock
   optimization, never a model change.

Results land in ``BENCH_divergent.json``.  Run directly
(``python benchmarks/bench_divergent.py [--smoke]``) or via pytest
(smoke sizes).
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.workloads import bitonic, kmeans
from repro.workloads.common import run_and_time

SMOKE_MIN_SPEEDUP = 2.0
FULL_MIN_SPEEDUP = 4.0


def _identical_timings(runs_a, runs_b):
    if len(runs_a) != len(runs_b):
        return False
    for ra, rb in zip(runs_a, runs_b):
        for f in dataclasses.fields(ra.timing):
            if f.name in ("machine", "bounds"):
                continue
            if getattr(ra.timing, f.name) != getattr(rb.timing, f.name):
                return False
    return True


def _compare(name, eager_fn, compiled_fn, check):
    """Eager-vs-compiled makespans plus the wide/sequential identity gate."""
    t0 = time.perf_counter()
    eager = run_and_time(f"{name}_eager", eager_fn)
    eager_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    wide = run_and_time(f"{name}_wide",
                        lambda d: compiled_fn(d, wide=True))
    wide_wall = time.perf_counter() - t0
    seq = run_and_time(f"{name}_seq", lambda d: compiled_fn(d, wide=False))

    check(eager.output)
    check(wide.output)
    results_identical = np.array_equal(wide.output, seq.output)
    timing_identical = _identical_timings(wide.device.runs, seq.device.runs)
    assert results_identical, f"{name}: wide output diverged from sequential"
    assert timing_identical, f"{name}: wide timing diverged from sequential"
    wide_paths = {r.path for r in wide.device.runs}
    assert wide_paths == {"wide"}, \
        f"{name}: expected every launch on the wide tier, got {wide_paths}"

    return {
        "workload": name,
        "eager_sim_us": round(eager.total_time_us, 2),
        "compiled_sim_us": round(wide.total_time_us, 2),
        "speedup": round(eager.total_time_us / wide.total_time_us, 2),
        "eager_launches": eager.launches,
        "compiled_launches": wide.launches,
        "eager_wall_ms": round(eager_wall * 1e3, 1),
        "compiled_wall_ms": round(wide_wall * 1e3, 1),
        "results_identical": True,
        "timing_identical": True,
    }


def _bitonic_case(log2n: int):
    keys = bitonic.make_input(log2n, seed=7)
    expect = np.sort(keys)

    def check(out):
        assert np.array_equal(out, expect), "bitonic output not sorted"

    return (
        lambda d: bitonic.run_cm_bitonic_eager(d, keys),
        lambda d, wide: bitonic.run_cm_bitonic_compiled(d, keys, wide=wide),
        check,
    )


def _kmeans_case(n: int, k: int, iterations: int):
    pts, _ = kmeans.make_points(n, k=k, seed=5)
    rng = np.random.default_rng(0)
    c0 = pts[rng.choice(n, k, replace=False)].copy()
    ref = kmeans.reference(pts, c0, iterations=iterations)

    def check(out):
        assert np.allclose(out, ref, atol=0.5), "kmeans centroids off"

    return (
        lambda d: kmeans.run_cm_kmeans_eager_divergent(
            d, pts, c0, iterations=iterations),
        lambda d, wide: kmeans.run_cm_kmeans_compiled(
            d, pts, c0, iterations=iterations, wide=wide),
        check,
    )


def run_benchmark(smoke=False, out_path="BENCH_divergent.json"):
    if smoke:
        cases = [("bitonic", _bitonic_case(9)),
                 ("kmeans", _kmeans_case(512, 8, 1))]
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        cases = [("bitonic", _bitonic_case(10)),
                 ("kmeans", _kmeans_case(2048, 8, 2))]
        min_speedup = FULL_MIN_SPEEDUP

    results = []
    for name, (eager_fn, compiled_fn, check) in cases:
        r = _compare(name, eager_fn, compiled_fn, check)
        results.append(r)
        print(f"  [{name:8s}] eager={r['eager_sim_us']:8.1f}us "
              f"({r['eager_launches']:3d} launches) "
              f"compiled={r['compiled_sim_us']:7.1f}us "
              f"({r['compiled_launches']:3d} launches) "
              f"speedup={r['speedup']:5.2f}x")

    doc = {
        "benchmark": "divergent",
        "mode": "smoke" if smoke else "full",
        "min_speedup": min_speedup,
        "workloads": results,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    worst = min(r["speedup"] for r in results)
    if worst < min_speedup:
        raise SystemExit(
            f"compiled divergent path only {worst:.2f}x faster than the "
            f"eager per-thread path (required {min_speedup}x)")
    return doc


def test_divergent_speedup(tmp_path, capsys):
    with capsys.disabled():
        print()
        doc = run_benchmark(smoke=True,
                            out_path=str(tmp_path / "BENCH_divergent.json"))
    assert all(r["results_identical"] and r["timing_identical"]
               for r in doc["workloads"])
    assert min(r["speedup"] for r in doc["workloads"]) >= SMOKE_MIN_SPEEDUP


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small sizes + 2x threshold (CI)")
    ap.add_argument("--out", default="BENCH_divergent.json",
                    help="trajectory JSON path")
    ns = ap.parse_args()
    sys.path.insert(0, "src")
    run_benchmark(smoke=ns.smoke, out_path=ns.out)
