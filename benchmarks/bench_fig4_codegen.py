"""Figure 4: one 6x24 uchar->float select compiles to nine SIMD16 movs.

Runs the full CMC pipeline (trace -> passes -> baling -> legalization ->
vISA -> register allocation) on the linear filter and checks the
generated Gen assembly has the paper's shape, printing the mov block.
"""

import numpy as np

from repro.compiler import compile_kernel


def _linear_body(cmx, inbuf, outbuf, hpos, vpos):
    in_m = cmx.matrix(np.uint8, 8, 32)
    cmx.read(inbuf, hpos * 24, vpos * 6, in_m)
    m = cmx.matrix(np.float32, 6, 24)
    m.assign(in_m.select(6, 1, 24, 1, 1, 3))
    for (i, j) in [(0, 0), (0, 3), (0, 6), (1, 0), (1, 6),
                   (2, 0), (2, 3), (2, 6)]:
        m += in_m.select(6, 1, 24, 1, i, j)
    out = cmx.matrix(np.uint8, 6, 24)
    out.assign(m * np.float32(0.1111))
    cmx.write(outbuf, hpos * 24 + 3, vpos * 6 + 1, out)


def test_fig4_codegen(benchmark, capsys):
    kernel = benchmark.pedantic(
        lambda: compile_kernel(_linear_body, "linear",
                               [("inbuf", True), ("outbuf", True)],
                               ["hpos", "vpos"]),
        rounds=1, iterations=1)
    movs = [i for i in kernel.program
            if i.opcode.value == "mov" and i.dst is not None
            and i.dst.dtype.name == "f" and i.srcs
            and getattr(i.srcs[0], "dtype", None) is not None
            and i.srcs[0].dtype.name == "ub"]
    assert len(movs) == 9, "Fig. 4: the select must be 9 instructions"
    assert all(i.exec_size == 16 for i in movs)
    assert any("<16;8,1>" in i.asm() for i in movs), \
        "row-spanning chunks must use the <16;8,1> region"
    benchmark.extra_info.update({
        "select_movs": len(movs),
        "total_instructions": kernel.num_instructions,
        "spills": kernel.allocation.spills,
    })
    with capsys.disabled():
        print("\n  [fig4] the compiled 6x24 uchar->float select:")
        for i in movs:
            print("    " + i.asm())
