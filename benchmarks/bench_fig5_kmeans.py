"""Figure 5: k-means clustering.

Paper: CM 30%-50% faster (speedup 1.3-1.5) across three data sets.
"""

import numpy as np
import pytest

from repro.workloads import kmeans as km


@pytest.mark.parametrize("n,k,label", [
    (1 << 15, 16, "32k pts, k=16"),
    (1 << 15, 20, "32k pts, k=20"),
    (49152, 24, "48k pts, k=24"),
])
def test_kmeans(compare, n, k, label):
    pts, _ = km.make_points(n, k=k)
    rng = np.random.default_rng(0)
    c0 = pts[rng.choice(n, k, replace=False)].copy()
    ref = km.reference(pts, c0, iterations=2)
    compare(
        f"kmeans {label}",
        cm_fn=lambda d: km.run_cm(d, pts, c0, iterations=2),
        ocl_fn=lambda d: km.run_ocl(d, pts, c0, iterations=2),
        reference=ref,
        paper="1.3-1.5",
        check=lambda out: np.allclose(out, ref, atol=0.5),
    )
