"""Figure 5: SpMV on protein-like, nd24k-like, and webbase-like matrices.

Paper: 1.10x (Protein), 1.25x (Nd24k), 2.6x (Webbase, where dynamic SIMD
width and empty-row skipping pay off).
"""

import numpy as np
import pytest

from repro.workloads import spmv


@pytest.mark.parametrize("maker,label,paper", [
    (spmv.make_protein, "protein-like", "1.10"),
    (spmv.make_nd24k, "nd24k-like", "1.25"),
    (spmv.make_webbase, "webbase-like", "2.6"),
])
def test_spmv(compare, maker, label, paper):
    m = maker()
    x = np.random.default_rng(1).standard_normal(m.ncols).astype(np.float32)
    ref = spmv.reference(m, x)
    compare(
        f"spmv {label}",
        cm_fn=lambda d: spmv.run_cm(d, m, x),
        ocl_fn=lambda d: spmv.run_ocl(d, m, x),
        reference=ref,
        paper=paper,
    )
