"""Grid-vectorized wide dispatch: wall-clock speedup over scalar dispatch.

Like bench_batch_engine.py this measures *host* wall time — the cost of
the simulator itself — not simulated microseconds.  Two Figure-5-class
compiled workloads (the JIT SGEMM and the media-block linear filter /
blur kernel) run the same launch through both dispatch paths of
``Device.run_compiled``:

- **scalar**: the pooled sequential path (``wide=False``) — one
  ``TracingExecutor`` re-interprets the program once per hardware
  thread.
- **wide**: the grid-vectorized path (``wide=True``) — a
  ``WideTracingExecutor`` stacks all thread GRFs and executes each
  instruction once for the whole grid.

Outputs must be byte-identical and every simulated-timing field of the
resulting ``KernelTiming`` must match exactly: the wide path is a pure
wall-clock optimization, never a model change.  A saxpy scaling sweep
records how the speedup grows with grid size.  Results land in
``BENCH_wide.json``.

Run directly (``python benchmarks/bench_wide_dispatch.py [--smoke]``)
or via pytest (smoke sizes).
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.sim.device import Device
from repro.workloads import gemm

SMOKE_MIN_SPEEDUP = 2.0
FULL_MIN_SPEEDUP = 5.0
TRIALS = 2

_VEC = 16
_BLUR_W, _BLUR_H = 32, 4


def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


def _blur_body(cmx, img, tx, ty):
    x0 = tx * _BLUR_W
    y0 = ty * _BLUR_H
    m = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    cmx.read(img, x0, y0, m)
    f = cmx.matrix(np.float32, _BLUR_H, _BLUR_W)
    f.assign(m)
    out = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    out.assign(f * np.float32(0.5))
    cmx.write(img, x0, y0, out)


def _launch_sgemm(mn, k, wide):
    rng = np.random.default_rng(0)
    a = (rng.random((mn, k), dtype=np.float32) - 0.5).astype(np.float32)
    b = (rng.random((k, mn), dtype=np.float32) - 0.5).astype(np.float32)
    dev = Device()
    abuf = dev.image2d(a.copy(), bytes_per_pixel=4)
    bbuf = dev.image2d(b.copy(), bytes_per_pixel=4)
    cbuf = dev.image2d(np.zeros((mn, mn), np.float32), bytes_per_pixel=4)
    kern = dev.compile(gemm._jit_gemm_body(k), "cm_sgemm_jit",
                       gemm._JIT_SIG, ["tx", "ty"])
    grid = (mn // gemm.JIT_BN, mn // gemm.JIT_BM)
    t0 = time.perf_counter()
    run = dev.run_compiled(kern, grid, [abuf, bbuf, cbuf],
                           scalars=lambda t: {"tx": t[0], "ty": t[1]},
                           name="cm_sgemm_jit", wide=wide)
    dt = time.perf_counter() - t0
    return dt, cbuf.to_numpy().copy(), run.timing, grid[0] * grid[1]


def _launch_blur(bx, by, wide):
    rng = np.random.default_rng(1)
    img = rng.integers(0, 200, size=(by * _BLUR_H, bx * _BLUR_W),
                       dtype=np.uint8)
    dev = Device()
    buf = dev.image2d(img.copy(), bytes_per_pixel=1)
    kern = dev.compile(_blur_body, "wide_blur", [("img", True)],
                       ["tx", "ty"])
    t0 = time.perf_counter()
    run = dev.run_compiled(kern, (bx, by), [buf],
                           scalars=lambda t: {"tx": t[0], "ty": t[1]},
                           name="wide_blur", wide=wide)
    dt = time.perf_counter() - t0
    return dt, buf.to_numpy().copy(), run.timing, bx * by


def _launch_saxpy(n_threads, wide):
    rng = np.random.default_rng(2)
    x = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    y = rng.standard_normal(n_threads * _VEC).astype(np.float32)
    dev = Device()
    xbuf, ybuf = dev.buffer(x.copy()), dev.buffer(y.copy())
    kern = dev.compile(_saxpy_body, "wide_saxpy",
                       [("xbuf", False), ("ybuf", False)], ["tid"])
    t0 = time.perf_counter()
    run = dev.run_compiled(kern, (n_threads,), [xbuf, ybuf],
                           scalars=lambda t: {"tid": t[0]},
                           name="wide_saxpy", wide=wide)
    dt = time.perf_counter() - t0
    return dt, ybuf.to_numpy().copy(), run.timing, n_threads


def _compare(launch, *args):
    """Best-of-TRIALS wall clock for both paths + identity checks."""
    wide_t = scalar_t = float("inf")
    for _ in range(TRIALS):
        dt, wide_out, wide_tm, threads = launch(*args, True)
        wide_t = min(wide_t, dt)
        dt, scalar_out, scalar_tm, _ = launch(*args, False)
        scalar_t = min(scalar_t, dt)
    assert np.array_equal(wide_out, scalar_out), "outputs diverged"
    for f in dataclasses.fields(scalar_tm):
        w, s = getattr(wide_tm, f.name), getattr(scalar_tm, f.name)
        assert w == s, f"simulated timing field {f.name}: {w} != {s}"
    return {
        "grid_threads": threads,
        "wide_ms": round(wide_t * 1e3, 2),
        "scalar_ms": round(scalar_t * 1e3, 2),
        "speedup": round(scalar_t / wide_t, 2),
        "sim_time_us": round(scalar_tm.time_us, 3),
        "timing_identical": True,
    }


def run_benchmark(smoke=False, out_path="BENCH_wide.json"):
    if smoke:
        workloads = [("sgemm", _launch_sgemm, (64, 16)),
                     ("linear_blur", _launch_blur, (8, 8))]
        sweep_sizes = [64, 256]
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        workloads = [("sgemm", _launch_sgemm, (256, 16)),
                     ("linear_blur", _launch_blur, (32, 16))]
        sweep_sizes = [64, 256, 1024, 4096]
        min_speedup = FULL_MIN_SPEEDUP

    results = []
    for name, launch, args in workloads:
        r = _compare(launch, *args)
        r["workload"] = name
        results.append(r)
        print(f"  [{name:12s}] threads={r['grid_threads']:5d} "
              f"wide={r['wide_ms']:8.1f}ms scalar={r['scalar_ms']:8.1f}ms "
              f"speedup={r['speedup']:5.1f}x")

    scaling = []
    for n in sweep_sizes:
        r = _compare(_launch_saxpy, n)
        scaling.append({"threads": n, "wide_ms": r["wide_ms"],
                        "scalar_ms": r["scalar_ms"],
                        "speedup": r["speedup"]})
        print(f"  [saxpy sweep ] threads={n:5d} "
              f"wide={r['wide_ms']:8.1f}ms scalar={r['scalar_ms']:8.1f}ms "
              f"speedup={r['speedup']:5.1f}x")

    doc = {
        "benchmark": "wide_dispatch",
        "mode": "smoke" if smoke else "full",
        "min_speedup": min_speedup,
        "workloads": results,
        "scaling": scaling,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  wrote {out_path}")

    worst = min(r["speedup"] for r in results)
    if worst < min_speedup:
        raise SystemExit(
            f"wide dispatch only {worst:.2f}x faster than scalar "
            f"(required {min_speedup}x)")
    return doc


def test_wide_dispatch_speedup(tmp_path, capsys):
    with capsys.disabled():
        print()
        doc = run_benchmark(smoke=True,
                            out_path=str(tmp_path / "BENCH_wide.json"))
    assert all(r["timing_identical"] for r in doc["workloads"])
    assert min(r["speedup"] for r in doc["workloads"]) >= SMOKE_MIN_SPEEDUP


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small grids + 2x threshold (CI)")
    ap.add_argument("--out", default="BENCH_wide.json",
                    help="trajectory JSON path")
    ns = ap.parse_args()
    sys.path.insert(0, "src")
    run_benchmark(smoke=ns.smoke, out_path=ns.out)
