"""Autotuner vs hand-tuned defaults: does search pay for itself?

The paper's performance chapters are a record of *manual* tuning —
block shapes, K-band depth, and the SLM-vs-registers choice picked by
an expert per workload per machine.  ``repro.tune`` mechanizes that
search over the same knobs, scoring each point with the simulator's
analytic cost model and gating every candidate bit-exactly against the
family's reference oracle.

This bench tunes the two register-blocked families (``gemm``,
``linear_filter``) on several machine generations and enforces the
ISSUE 10 acceptance gates:

- the tuned winner is **never worse** than the hand-tuned default on
  any (family, machine) pair (the default is always evaluated, so the
  deterministic search can only match or beat it — the 0.95 floor
  guards against a regression in that invariant);
- on at least one pair the tuned variant is **>= 1.1x** faster — the
  proof that the hand-tuned defaults genuinely leave machine-specific
  performance on the table (empirically: Gen12's 672 threads prefer a
  wider ``bn`` register block than the default).

Results (winners, speedups, evaluation counts, per-family winner
divergence across machines) land in ``BENCH_autotune.json``.

Run directly (``python benchmarks/bench_autotune.py [--smoke]``) or via
pytest (smoke: hill climb on two machines).
"""

import argparse
import json
import sys
from pathlib import Path

MIN_RATIO = 0.95   # tuned vs hand-tuned floor, every (family, machine)
PEAK_RATIO = 1.1   # required somewhere across the grid


def _machines(smoke):
    from repro import GEN9_SKL, GEN11_ICL, GEN12_TGL, SIMD32_APL
    if smoke:
        return [GEN9_SKL, GEN12_TGL]
    return [GEN9_SKL, GEN11_ICL, GEN12_TGL, SIMD32_APL]


def run_benchmark(smoke=False, out_path="BENCH_autotune.json"):
    from repro.tune import tune

    # The hill climb lands on the grid's global winner or a
    # near-indistinguishable local optimum in about a third of the
    # evaluations; smoke mode uses it to keep CI short.
    strategy = "hill" if smoke else "grid"
    families = ["gemm", "linear_filter"]
    machines = _machines(smoke)

    rows = []
    for family in families:
        for machine in machines:
            res = tune(family, machine, strategy=strategy)
            row = {
                "family": family,
                "machine": res.machine_name,
                "strategy": res.strategy,
                "default": res.baseline_point,
                "default_sim_us": round(res.baseline_sim_us, 3),
                "winner": res.best_point,
                "winner_label": res.best_label,
                "tuned_sim_us": round(res.best_sim_us, 3),
                "speedup": round(res.speedup, 3),
                "n_evaluated": res.n_evaluated,
                "n_admissible": res.n_admissible,
            }
            rows.append(row)
            print(f"  [{family:13s} on {res.machine_name:24s}] "
                  f"{res.best_label:28s} "
                  f"{res.baseline_sim_us:8.1f}us -> "
                  f"{res.best_sim_us:8.1f}us  "
                  f"({res.speedup:.2f}x, {res.n_evaluated} evals, "
                  f"{res.n_evaluated - res.n_admissible} inadmissible)")

    winners = {}
    for family in families:
        labels = {r["machine"]: r["winner_label"] for r in rows
                  if r["family"] == family}
        winners[family] = {
            "by_machine": labels,
            "machines_disagree": len(set(labels.values())) > 1,
        }

    worst = min(r["speedup"] for r in rows)
    peak = max(r["speedup"] for r in rows)
    doc = {
        "benchmark": "autotune",
        "mode": "smoke" if smoke else "full",
        "strategy": strategy,
        "min_ratio": MIN_RATIO,
        "peak_ratio": PEAK_RATIO,
        "worst_speedup": round(worst, 3),
        "peak_speedup": round(peak, 3),
        "results": rows,
        "winners": winners,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  worst={worst:.2f}x peak={peak:.2f}x  wrote {out_path}")

    if worst < MIN_RATIO:
        raise SystemExit(
            f"tuned variant regressed below the hand-tuned default: "
            f"{worst:.3f}x (floor {MIN_RATIO}x)")
    if peak < PEAK_RATIO:
        raise SystemExit(
            f"autotuning never beat hand-tuning by {PEAK_RATIO}x "
            f"anywhere (best {peak:.3f}x)")
    return doc


def test_autotune_beats_hand_tuned(tmp_path, capsys):
    with capsys.disabled():
        print()
        doc = run_benchmark(
            smoke=True, out_path=str(tmp_path / "BENCH_autotune.json"))
    assert doc["worst_speedup"] >= 1.0  # baseline is always evaluated
    assert doc["peak_speedup"] >= PEAK_RATIO


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="hill climb on two machines (CI)")
    ap.add_argument("--out", default="BENCH_autotune.json",
                    help="trajectory JSON path")
    ns = ap.parse_args()
    sys.path.insert(0, "src")
    run_benchmark(smoke=ns.smoke, out_path=ns.out)
