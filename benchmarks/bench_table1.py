"""Table I: the productivity-study kernels.

The development-effort columns are person-weeks from the paper's internal
study and cannot be re-measured; this bench reports them alongside the
reproducible column — the CM/OpenCL performance ratio measured on the
simulator — plus a source-complexity proxy (non-blank source lines of
our paired implementations).
"""

import inspect

import numpy as np

from repro.workloads import conv, gemm, stencil, systolic

#: (kernel, paper OCL effort person-weeks, CM effort, paper perf ratio)
PAPER_ROWS = {
    "systolic_gemm": ("8", "3", "1.09"),
    "sgemm_dgemm": ("12", "4", "1.06-1.09"),
    "conv1x1": ("4", "4", "1.08"),
    "conv3x3": ("15", "4", "1.3"),
    "stencil2d": ("2-3", "1", "2.2"),
}


def _loc(*fns):
    return sum(len([ln for ln in inspect.getsource(f).splitlines()
                    if ln.strip()]) for f in fns)


def _report(compare_result, name, benchmark, capsys, cm_fns, ocl_fns):
    ocl_w, cm_w, paper_perf = PAPER_ROWS[name]
    cm_r, ocl_r = compare_result["cm"], compare_result["ocl"]
    ratio = ocl_r.total_time_us / cm_r.total_time_us
    benchmark.extra_info.update({
        "paper_ocl_effort_pw": ocl_w,
        "paper_cm_effort_pw": cm_w,
        "paper_perf_ratio": paper_perf,
        "measured_perf_ratio": round(ratio, 3),
        "cm_source_lines": _loc(*cm_fns),
        "ocl_source_lines": _loc(*ocl_fns),
    })
    with capsys.disabled():
        print(f"  [table1 {name}] paper effort OCL/CM = {ocl_w}/{cm_w} pw, "
              f"paper perf {paper_perf}, measured {ratio:.3f}, "
              f"source lines OCL/CM = {_loc(*ocl_fns)}/{_loc(*cm_fns)}")


def test_systolic_gemm(compare, benchmark, capsys):
    a, b, c = systolic.make_inputs(256, 256, 256)
    ref = systolic.reference(a, b, c)
    res = compare("table1 systolic GEMM",
                  cm_fn=lambda d: systolic.run_cm(d, a, b, c),
                  ocl_fn=lambda d: systolic.run_ocl(d, a, b, c),
                  reference=ref, paper="1.09",
                  check=lambda o: np.allclose(o, ref, rtol=1e-2, atol=1e-2))
    _report(res, "systolic_gemm", benchmark, capsys,
            (gemm._cm_gemm_kernel,), (gemm._ocl_gemm_kernel,))


def test_sgemm_dgemm(compare, benchmark, capsys):
    a, b, c = gemm.make_inputs(256, 256, 256)
    ref = gemm.reference(a, b, c)
    res = compare("table1 SGEMM",
                  cm_fn=lambda d: gemm.run_cm_sgemm(d, a, b, c),
                  ocl_fn=lambda d: gemm.run_ocl_sgemm(d, a, b, c),
                  reference=ref, paper="1.06-1.09",
                  check=lambda o: np.allclose(o, ref, rtol=1e-2, atol=1e-2))
    _report(res, "sgemm_dgemm", benchmark, capsys,
            (gemm._cm_gemm_kernel,), (gemm._ocl_gemm_kernel,))


def test_conv1x1(compare, benchmark, capsys):
    acts, wts = conv.make_conv1x1_inputs()
    ref = conv.conv1x1_reference(acts, wts)
    res = compare("table1 conv1x1",
                  cm_fn=lambda d: conv.run_cm_conv1x1(d, acts, wts),
                  ocl_fn=lambda d: conv.run_ocl_conv1x1(d, acts, wts),
                  reference=ref, paper="1.08",
                  check=lambda o: np.allclose(o, ref, rtol=1e-2, atol=1e-2))
    _report(res, "conv1x1", benchmark, capsys,
            (conv.run_cm_conv1x1,), (conv.run_ocl_conv1x1,))


def test_conv3x3(compare, benchmark, capsys):
    img, wts = conv.make_conv3x3_inputs(256, 128)
    ref = conv.conv3x3_reference(img, wts)
    res = compare("table1 conv3x3",
                  cm_fn=lambda d: conv.run_cm_conv3x3(d, img, wts),
                  ocl_fn=lambda d: conv.run_ocl_conv3x3(d, img, wts),
                  reference=ref, paper="1.3",
                  check=lambda o: np.allclose(o, ref, rtol=1e-3, atol=1e-4))
    _report(res, "conv3x3", benchmark, capsys,
            (conv._cm_conv3x3_kernel,), (conv._ocl_conv3x3,))


def test_stencil2d(compare, benchmark, capsys):
    g = stencil.make_grid(512, 256)
    ref = stencil.reference(g)
    res = compare("table1 stencil2d",
                  cm_fn=lambda d: stencil.run_cm(d, g),
                  ocl_fn=lambda d: stencil.run_ocl(d, g),
                  reference=ref, paper="2.2",
                  check=lambda o: np.allclose(o, ref, atol=1e-5))
    _report(res, "stencil2d", benchmark, capsys,
            (stencil._cm_stencil.__wrapped_kernel__,), (stencil._ocl_stencil,))
